//! §2/§4.4 claim: per-message ordering overhead of the sequencing scheme
//! (one group-local number plus one stamp per double overlap of the
//! destination group) stays below vector-timestamp overhead (8 bytes per
//! node) whenever nodes outnumber groups.

use seqnet_bench::experiments::overhead_rows;
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    let configs: &[(usize, usize)] = if scale.paper {
        &[(32, 8), (64, 16), (128, 32), (128, 64), (256, 64), (64, 64), (32, 64)]
    } else {
        &[(16, 4), (16, 16)]
    };

    let mut rows = Vec::new();
    for &(nodes, groups) in configs {
        let per_group = overhead_rows(nodes, groups, 0xF1944);
        if per_group.is_empty() {
            continue;
        }
        let stamps: Vec<f64> = per_group.iter().map(|(_, s, _)| *s as f64).collect();
        let vector = per_group[0].2;
        let mean_stamp = stamps.iter().sum::<f64>() / stamps.len() as f64;
        let max_stamp = stamps.iter().copied().fold(f64::MIN, f64::max);
        rows.push(vec![
            nodes.to_string(),
            groups.to_string(),
            f3(mean_stamp),
            f3(max_stamp),
            vector.to_string(),
            if max_stamp < vector as f64 { "stamps" } else { "vector" }.to_string(),
        ]);
    }

    print_table(
        "Ordering metadata per message: sequencing stamps vs vector timestamps (bytes)",
        &["nodes", "groups", "mean stamp B", "max stamp B", "vector B", "winner"],
        &rows,
    );
    let path = save_csv(
        "overhead_vs_vector",
        &["nodes", "groups", "mean_stamp_bytes", "max_stamp_bytes", "vector_bytes", "winner"],
        &rows,
    );
    println!("\nTable written to {path}");
    println!("(The paper's crossover: the scheme wins whenever nodes exceed groups, §4.4.)");
}
