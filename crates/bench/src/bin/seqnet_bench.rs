//! `seqnet-bench` — a deterministic, seedable load/soak harness driving
//! the simulator, the threaded runtime, and the socket cluster through
//! *identical* workloads, plus a schema validator for the JSON it emits.
//!
//! ```text
//! seqnet-bench load [--driver sim|runtime|socket|both|all] [--mode open|closed]
//!                   [--seed N] [--groups N] [--overlap N] [--rate-hz F]
//!                   [--chains N] [--warmup-ms N] [--measure-ms N]
//!                   [--churn-cycles N] [--out PATH] [--smoke]
//! seqnet-bench validate [PATH]
//! ```
//!
//! `load` builds a chain-overlap membership (`--groups` groups, adjacent
//! groups sharing `--overlap` members), generates one workload from
//! `--seed` — open-loop (each group's first member publishes periodically
//! at `--rate-hz`, phase-shifted per publisher) or closed-loop (`--chains`
//! publish-on-delivery chains per group) — and runs it through the chosen
//! drivers: the discrete-event simulator (virtual time, batched channel
//! pumps), the threaded runtime (wall time, coalesced links), and the
//! socket cluster (wall time, one OS process per sequencing node over
//! real TCP; this binary respawns itself as the node processes). Messages
//! published during the warmup window are excluded from the stats; the
//! measure window yields throughput, a delivery-latency histogram
//! ([`seqnet_obs::Histogram`], microsecond buckets), an
//! allocations-per-message proxy from a counting global allocator, and the
//! wire batch-size histogram. Results go to `results/BENCH_6.json`
//! (schema documented in `results/README.md`, checked by `validate` and
//! by CI's bench-smoke job). `--driver both` is sim + runtime; `all` adds
//! the socket cluster.
//!
//! `--spans` turns the run into the **stretch-decomposition scenario**
//! (`results/BENCH_9.json`): the same workload with the message-lifecycle
//! trace plane enabled in every driver, each delivery's span reconstructed
//! ([`seqnet_obs::span::TraceSet`]) and its end-to-end latency decomposed
//! into `stamp_wait` (publish → last sequencing stamp), `wire` (stamp →
//! arrival), and `group_gap_wait`/`atom_gap_wait` (receiver buffering on a
//! sequencing gap). The components of each delivery sum exactly to its
//! end-to-end latency; the JSON records per-driver percentiles per
//! component plus the mean-sum identity, which `validate` re-checks.
//!
//! `--churn-cycles N` turns the run into the **churn scenario**
//! (`results/BENCH_8.json`): the threaded runtime alone, open loop, with
//! `N` epoch-stamped online reconfigurations (PROTOCOL.md §14) spread
//! evenly across the measure window — an extra node repeatedly joins and
//! leaves group 0, and every handoff window absorbs a small publish burst
//! that parks and replays under the new epoch. The report splits the
//! latency histogram into *steady* deliveries (published outside any
//! handoff) and *churn* deliveries (parked inside one), so the p50/p95/p99
//! cost of reconfiguring under live traffic is measured, not guessed.
//!
//! `--saturate` turns the run into the **saturation scenario**
//! (`results/BENCH_10.json`): a closed-loop ramp that doubles the offered
//! open-loop rate step by step until the driver hits its latency knee —
//! the first step where achieved throughput falls below 90% of offered,
//! or p99 latency blows past 5× the base step's. Each driver (sim,
//! runtime, socket) reports its per-step offered/achieved throughput,
//! p99, and allocations-per-message, plus the resulting max throughput
//! and knee point; the base step doubles as the normal per-driver report,
//! so the file also records the runtime-vs-sim allocation comparison the
//! scratch-buffer wire path is accountable to (PROTOCOL.md §16).
//!
//! `--smoke` shrinks the windows for CI; everything stays reproducible
//! from the seed (wall-clock latencies on the runtime driver vary, the
//! workload itself never does).

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use seqnet_bench::output::{f3, print_table};
use seqnet_core::proto::trace::TraceEvent;
use seqnet_core::{Message, MessageId, OrderedPubSub};
use seqnet_deploy::DeployCluster;
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_obs::span::{BreakdownHistograms, TraceSet};
use seqnet_obs::{Histogram, Recorder};
use seqnet_runtime::{Cluster, ClusterConfig};
use seqnet_sim::SimTime;

/// A pass-through allocator that counts allocation calls, giving the
/// harness its allocations-per-message proxy: total allocator hits across
/// every thread during the run, divided by messages delivered. The
/// batched paths exist to push this toward zero on the hot path.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; the counter is the only
// addition and is atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Driver {
    Sim,
    Runtime,
    Socket,
    /// Simulator + threaded runtime (the historical default pair).
    Both,
    /// All three drivers, socket cluster included.
    All,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Open,
    Closed,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Open => "open",
            Mode::Closed => "closed",
        }
    }
}

#[derive(Clone)]
struct LoadConfig {
    driver: Driver,
    mode: Mode,
    seed: u64,
    groups: usize,
    overlap: usize,
    rate_hz: f64,
    chains: usize,
    warmup_ms: u64,
    measure_ms: u64,
    /// Online reconfigurations spread across the measure window
    /// (PROTOCOL.md §14). 0 = plain load run (BENCH_6); positive =
    /// churn scenario (BENCH_8), threaded runtime only.
    churn_cycles: usize,
    /// Trace every driver and emit the per-driver latency-stretch
    /// decomposition (BENCH_9): span reconstruction over the run's
    /// lifecycle events, components summing to end-to-end.
    spans: bool,
    /// Closed-loop saturation ramp (BENCH_10): double the offered rate
    /// per step until the latency knee, per driver.
    saturate: bool,
    /// Ramp length cap for `--saturate` (the ramp also stops at the
    /// knee).
    sat_steps: usize,
    out: String,
    smoke: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            driver: Driver::All,
            mode: Mode::Open,
            seed: 0x5EED,
            groups: 4,
            overlap: 2,
            rate_hz: 200.0,
            chains: 2,
            warmup_ms: 200,
            measure_ms: 1_000,
            churn_cycles: 0,
            spans: false,
            saturate: false,
            sat_steps: 6,
            out: "results/BENCH_6.json".to_string(),
            smoke: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: seqnet-bench load [--driver sim|runtime|socket|both|all] [--mode open|closed]\n\
         \x20                        [--seed N] [--groups N] [--overlap N] [--rate-hz F]\n\
         \x20                        [--chains N] [--warmup-ms N] [--measure-ms N]\n\
         \x20                        [--churn-cycles N] [--spans] [--saturate] [--sat-steps N]\n\
         \x20                        [--out PATH] [--smoke]\n\
         \x20      seqnet-bench validate [PATH]"
    );
    std::process::exit(2);
}

fn parse_load(args: &[String]) -> LoadConfig {
    let mut cfg = LoadConfig::default();
    let mut out_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            }).clone()
        };
        match arg.as_str() {
            "--driver" => {
                cfg.driver = match value("--driver").as_str() {
                    "sim" => Driver::Sim,
                    "runtime" => Driver::Runtime,
                    "socket" => Driver::Socket,
                    "both" => Driver::Both,
                    "all" => Driver::All,
                    other => {
                        eprintln!("unknown driver {other:?}");
                        usage()
                    }
                }
            }
            "--mode" => {
                cfg.mode = match value("--mode").as_str() {
                    "open" => Mode::Open,
                    "closed" => Mode::Closed,
                    other => {
                        eprintln!("unknown mode {other:?}");
                        usage()
                    }
                }
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed: u64"),
            "--groups" => cfg.groups = value("--groups").parse().expect("--groups: usize"),
            "--overlap" => cfg.overlap = value("--overlap").parse().expect("--overlap: usize"),
            "--rate-hz" => cfg.rate_hz = value("--rate-hz").parse().expect("--rate-hz: f64"),
            "--chains" => cfg.chains = value("--chains").parse().expect("--chains: usize"),
            "--warmup-ms" => cfg.warmup_ms = value("--warmup-ms").parse().expect("--warmup-ms: u64"),
            "--measure-ms" => {
                cfg.measure_ms = value("--measure-ms").parse().expect("--measure-ms: u64")
            }
            "--churn-cycles" => {
                cfg.churn_cycles =
                    value("--churn-cycles").parse().expect("--churn-cycles: usize")
            }
            "--spans" => cfg.spans = true,
            "--saturate" => cfg.saturate = true,
            "--sat-steps" => {
                cfg.sat_steps = value("--sat-steps").parse().expect("--sat-steps: usize")
            }
            "--out" => {
                cfg.out = value("--out");
                out_set = true;
            }
            "--smoke" => cfg.smoke = true,
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if cfg.smoke {
        cfg.groups = cfg.groups.min(3);
        cfg.rate_hz = cfg.rate_hz.min(150.0);
        cfg.warmup_ms = cfg.warmup_ms.min(50);
        cfg.measure_ms = cfg.measure_ms.min(250);
        cfg.churn_cycles = cfg.churn_cycles.min(2);
        cfg.sat_steps = cfg.sat_steps.min(4);
    }
    if cfg.churn_cycles > 0 && !out_set {
        cfg.out = "results/BENCH_8.json".to_string();
    }
    if cfg.spans && !out_set {
        cfg.out = "results/BENCH_9.json".to_string();
    }
    if cfg.saturate && !out_set {
        cfg.out = "results/BENCH_10.json".to_string();
    }
    assert!(cfg.groups >= 1, "--groups must be at least 1");
    assert!(cfg.rate_hz > 0.0, "--rate-hz must be positive");
    assert!(cfg.measure_ms > 0, "--measure-ms must be positive");
    assert!(cfg.chains >= 1, "--chains must be at least 1");
    assert!(
        cfg.churn_cycles == 0 || cfg.mode == Mode::Open,
        "--churn-cycles requires --mode open"
    );
    assert!(
        !(cfg.spans && cfg.churn_cycles > 0),
        "--spans and --churn-cycles are separate scenarios (BENCH_9 vs BENCH_8)"
    );
    assert!(
        !(cfg.saturate && (cfg.spans || cfg.churn_cycles > 0)),
        "--saturate is its own scenario (BENCH_10)"
    );
    assert!(
        !cfg.saturate || cfg.mode == Mode::Open,
        "--saturate ramps the open-loop rate; use --mode open"
    );
    assert!(cfg.sat_steps >= 1, "--sat-steps must be at least 1");
    cfg
}

/// The chain-overlap membership both drivers share: group `i` subscribes
/// nodes `i ..= i + overlap`, so adjacent groups share `overlap` members
/// (double overlaps for `overlap >= 2`, forcing cross-group sequencing).
fn membership(groups: usize, overlap: usize) -> Membership {
    let mut m = Membership::new();
    for grp in 0..groups {
        for node in grp..=grp + overlap {
            m.subscribe(NodeId(node as u32), GroupId(grp as u32));
        }
    }
    m
}

/// One publish in the generated workload, shared verbatim by both
/// drivers. Open-loop entries carry an absolute send time; closed-loop
/// entries carry the chain they extend (publish when the chain's previous
/// message is first delivered).
struct WorkItem {
    at_us: u64,
    sender: NodeId,
    group: GroupId,
    chain: usize,
}

/// The deterministic workload: for open loop, every group's first member
/// publishing at `rate_hz` with a seed-drawn phase; for closed loop,
/// `chains` chains per group, each long enough to sustain `rate_hz` over
/// the horizon. One function of the config — the drivers replay it.
fn workload(cfg: &LoadConfig, m: &Membership) -> Vec<WorkItem> {
    use seqnet_core::proto::testing::splitmix64;
    let mut state = cfg.seed ^ 0xB00C_5EED;
    let horizon_us = (cfg.warmup_ms + cfg.measure_ms) * 1_000;
    let period_us = (1_000_000.0 / cfg.rate_hz).max(1.0) as u64;
    let mut items = Vec::new();
    match cfg.mode {
        Mode::Open => {
            for group in m.groups() {
                let sender = m.members(group).next().expect("groups are non-empty");
                let phase = splitmix64(&mut state) % period_us;
                let mut t = phase;
                while t < horizon_us {
                    items.push(WorkItem { at_us: t, sender, group, chain: usize::MAX });
                    t += period_us;
                }
            }
            items.sort_by_key(|w| w.at_us);
        }
        Mode::Closed => {
            let per_chain =
                ((horizon_us as f64 / period_us as f64) / cfg.chains as f64).ceil() as usize;
            let mut chain = 0usize;
            for group in m.groups() {
                let sender = m.members(group).next().expect("groups are non-empty");
                for _ in 0..cfg.chains {
                    let phase = splitmix64(&mut state) % period_us;
                    for link in 0..per_chain.max(1) {
                        // Only the head has a meaningful time; the rest
                        // fire on delivery of their predecessor.
                        items.push(WorkItem {
                            at_us: if link == 0 { phase } else { u64::MAX },
                            sender,
                            group,
                            chain,
                        });
                    }
                    chain += 1;
                }
            }
        }
    }
    items
}

/// Per-driver results, in the units the JSON schema pins down.
struct DriverReport {
    driver: &'static str,
    time_base: &'static str,
    published: u64,
    delivered: u64,
    msgs_per_sec: f64,
    latency_us: Histogram,
    allocations_per_message: f64,
    batch_sizes: BTreeMap<usize, u64>,
    /// Latency-stretch decomposition over the whole run's reconstructed
    /// spans; present only in the BENCH_9 (`--spans`) scenario.
    spans: Option<BreakdownHistograms>,
}

/// Reconstructs the run's spans and folds them into per-component
/// histograms, the BENCH_9 payload of one driver.
fn span_breakdown(events: &[TraceEvent]) -> BreakdownHistograms {
    TraceSet::from_events(events).breakdown_histograms()
}

fn run_sim_driver(cfg: &LoadConfig, m: &Membership, items: &[WorkItem]) -> DriverReport {
    use std::sync::{Arc, Mutex};
    let mut bus = OrderedPubSub::new(m);
    let recorder = cfg.spans.then(|| {
        let recorder = Arc::new(Mutex::new(Recorder::new()));
        bus.set_trace_sink(recorder.clone());
        recorder
    });
    let warmup = SimTime::from_micros(cfg.warmup_ms * 1_000);
    let allocs_before = allocations();
    let mut published = 0u64;
    match cfg.mode {
        Mode::Open => {
            for w in items {
                bus.publish_at(SimTime::from_micros(w.at_us), w.sender, w.group, Vec::new())
                    .expect("open-loop publish");
                published += 1;
            }
        }
        Mode::Closed => {
            // Chains become publish-after triggers: each message fires
            // when its predecessor reaches its own sender.
            let mut last: HashMap<usize, MessageId> = HashMap::new();
            for w in items {
                let id = match last.get(&w.chain) {
                    None => bus
                        .publish_at(SimTime::from_micros(w.at_us), w.sender, w.group, Vec::new())
                        .expect("chain head publish"),
                    Some(&prev) => bus
                        .publish_after(w.sender, prev, w.group, Vec::new())
                        .expect("chain link publish"),
                };
                last.insert(w.chain, id);
                published += 1;
            }
        }
    }
    bus.run_to_quiescence();
    let allocs = allocations() - allocs_before;
    assert_eq!(bus.stuck_messages(), 0, "load run must not deadlock");

    let mut latency = Histogram::new();
    let mut delivered = 0u64;
    let mut span_end = warmup;
    for d in bus.all_deliveries() {
        if d.published < warmup {
            continue;
        }
        latency.record((d.delivered - d.published).as_micros());
        span_end = span_end.max(d.delivered);
        delivered += 1;
    }
    let total_delivered = bus.all_deliveries().count() as u64;
    let span_s = (span_end - warmup).as_ms().max(1.0) / 1_000.0;
    let spans = recorder.map(|rec| {
        let rec = rec.lock().expect("trace sink poisoned");
        span_breakdown(rec.events())
    });
    DriverReport {
        driver: "sim",
        time_base: "virtual-us",
        published,
        delivered,
        msgs_per_sec: delivered as f64 / span_s,
        latency_us: latency,
        allocations_per_message: allocs as f64 / total_delivered.max(1) as f64,
        batch_sizes: bus.batch_size_counts().clone(),
        spans,
    }
}

/// Anything that can stand in as the wall-clock deployment under load:
/// the threaded runtime or the socket cluster. Same publish/delivery
/// surface, different transport — which is the point of benchmarking them
/// side by side.
trait LoadTarget {
    /// The `driver` string the JSON schema records.
    const NAME: &'static str;
    fn publish(&mut self, sender: NodeId, group: GroupId) -> MessageId;
    fn next_delivery(&mut self, timeout: Duration) -> Option<(NodeId, Message)>;
    /// Shuts the deployment down and returns the wire batch-size histogram.
    fn finish(&mut self) -> BTreeMap<usize, u64>;
    /// The run's lifecycle trace, read after [`finish`](Self::finish);
    /// empty unless the deployment was started with tracing on.
    fn collect_trace(&self) -> Vec<TraceEvent>;
}

impl LoadTarget for Cluster {
    const NAME: &'static str = "runtime";
    fn publish(&mut self, sender: NodeId, group: GroupId) -> MessageId {
        Cluster::publish(self, sender, group, Vec::new()).expect("runtime publish")
    }
    fn next_delivery(&mut self, timeout: Duration) -> Option<(NodeId, Message)> {
        Cluster::next_delivery(self, timeout)
    }
    fn finish(&mut self) -> BTreeMap<usize, u64> {
        self.shutdown();
        self.batch_size_counts()
    }
    fn collect_trace(&self) -> Vec<TraceEvent> {
        self.trace_events()
    }
}

impl LoadTarget for DeployCluster {
    const NAME: &'static str = "socket";
    fn publish(&mut self, sender: NodeId, group: GroupId) -> MessageId {
        DeployCluster::publish(self, sender, group, Vec::new()).expect("socket publish")
    }
    fn next_delivery(&mut self, timeout: Duration) -> Option<(NodeId, Message)> {
        DeployCluster::next_delivery(self, timeout)
    }
    fn finish(&mut self) -> BTreeMap<usize, u64> {
        let _ = self.shutdown();
        self.batch_size_counts()
    }
    fn collect_trace(&self) -> Vec<TraceEvent> {
        // The coordinator's events are in memory; the node processes
        // flushed theirs to per-process JSONL in the run directory. The
        // reconstructor needs no global ordering, so plain concatenation
        // is enough.
        let mut events = self.trace_events();
        for idx in 0..self.num_sequencing_nodes() {
            let path = self.dir().join(format!("node{idx}.obs.jsonl"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                events.extend(text.lines().filter_map(seqnet_obs::jsonl::parse_jsonl));
            }
        }
        events
    }
}

fn run_runtime_driver(cfg: &LoadConfig, m: &Membership, items: &[WorkItem]) -> DriverReport {
    let cluster = Cluster::start(
        m,
        ClusterConfig {
            coalesce: true,
            seed: cfg.seed,
            trace: cfg.spans,
            ..ClusterConfig::default()
        },
    );
    run_wall_driver(cfg, m, items, cluster)
}

/// The socket cluster under the same load: every sequencing node is a
/// child OS process (this binary re-executed in node mode), every link a
/// real TCP connection.
fn run_socket_driver(cfg: &LoadConfig, m: &Membership, items: &[WorkItem]) -> DriverReport {
    let cluster = DeployCluster::start(
        m,
        ClusterConfig {
            coalesce: true,
            seed: cfg.seed,
            trace: cfg.spans,
            ..ClusterConfig::default()
        },
    )
    .expect("socket cluster starts");
    run_wall_driver(cfg, m, items, cluster)
}

fn run_wall_driver<T: LoadTarget>(
    cfg: &LoadConfig,
    m: &Membership,
    items: &[WorkItem],
    mut cluster: T,
) -> DriverReport {
    let start = Instant::now();
    let warmup = start + Duration::from_millis(cfg.warmup_ms);
    let horizon = start + Duration::from_millis(cfg.warmup_ms + cfg.measure_ms);
    let allocs_before = allocations();

    let mut latency = Histogram::new();
    let mut sent_at: HashMap<MessageId, Instant> = HashMap::new();
    let mut expected = 0usize;
    let mut received = 0usize;
    let mut measured = 0u64;
    let mut publish = |cluster: &mut T,
                       sent_at: &mut HashMap<MessageId, Instant>,
                       expected: &mut usize,
                       w: &WorkItem|
     -> MessageId {
        let id = cluster.publish(w.sender, w.group);
        sent_at.insert(id, Instant::now());
        *expected += m.group_size(w.group);
        id
    };
    // Records one delivery; returns its latency source instant presence.
    let mut note = |latency: &mut Histogram, sent_at: &HashMap<MessageId, Instant>,
                    measured: &mut u64, id: MessageId, at: Instant| {
        if let Some(&t0) = sent_at.get(&id) {
            if t0 >= warmup {
                latency.record(at.duration_since(t0).as_micros() as u64);
                *measured += 1;
            }
        }
    };

    match cfg.mode {
        Mode::Open => {
            let mut next = 0usize;
            while next < items.len() {
                let now = Instant::now();
                let due = start + Duration::from_micros(items[next].at_us);
                if now >= due {
                    publish(&mut cluster, &mut sent_at, &mut expected, &items[next]);
                    next += 1;
                    continue;
                }
                if let Some((_, msg)) = cluster.next_delivery(due.saturating_duration_since(now)) {
                    note(&mut latency, &sent_at, &mut measured, msg.id, Instant::now());
                    received += 1;
                }
            }
        }
        Mode::Closed => {
            // Group the items by chain, publish each head, then publish
            // the next link whenever a chain's newest message first
            // arrives anywhere.
            let mut chains: BTreeMap<usize, Vec<&WorkItem>> = BTreeMap::new();
            for w in items {
                chains.entry(w.chain).or_default().push(w);
            }
            let mut cursor: HashMap<usize, usize> = HashMap::new();
            let mut head_of: HashMap<MessageId, usize> = HashMap::new();
            let mut advanced: HashSet<MessageId> = HashSet::new();
            for (&chain, links) in &chains {
                let id = publish(&mut cluster, &mut sent_at, &mut expected, links[0]);
                cursor.insert(chain, 1);
                head_of.insert(id, chain);
            }
            while Instant::now() < horizon {
                let Some((_, msg)) = cluster.next_delivery(Duration::from_millis(5)) else {
                    continue;
                };
                note(&mut latency, &sent_at, &mut measured, msg.id, Instant::now());
                received += 1;
                if let Some(&chain) = head_of.get(&msg.id) {
                    if advanced.insert(msg.id) {
                        let at = cursor[&chain];
                        if let Some(w) = chains[&chain].get(at) {
                            let id = publish(&mut cluster, &mut sent_at, &mut expected, w);
                            cursor.insert(chain, at + 1);
                            head_of.insert(id, chain);
                        }
                    }
                }
            }
        }
    }
    // Drain the tail: everything published must still arrive everywhere.
    let deadline = Instant::now() + Duration::from_secs(30);
    while received < expected && Instant::now() < deadline {
        match cluster.next_delivery(Duration::from_millis(20)) {
            Some((_, msg)) => {
                note(&mut latency, &sent_at, &mut measured, msg.id, Instant::now());
                received += 1;
            }
            None => {}
        }
    }
    assert_eq!(received, expected, "{} load run lost deliveries", T::NAME);
    let elapsed = Instant::now().duration_since(warmup).as_secs_f64().max(1e-3);
    let batch_sizes = cluster.finish();
    let allocs = allocations() - allocs_before;
    let spans = cfg.spans.then(|| span_breakdown(&cluster.collect_trace()));
    DriverReport {
        driver: T::NAME,
        time_base: "wall-us",
        published: sent_at.len() as u64,
        delivered: measured,
        msgs_per_sec: measured as f64 / elapsed,
        latency_us: latency,
        allocations_per_message: allocs as f64 / (received as u64).max(1) as f64,
        batch_sizes,
        spans,
    }
}

/// The churn scenario's extra results: the same run's latency histogram
/// split by whether a message was published inside a handoff window
/// (parked, replayed under the next epoch) or in steady state.
struct ChurnReport {
    cycles: u64,
    steady: Histogram,
    churn: Histogram,
}

/// The churn scenario (BENCH_8): open-loop load on the threaded runtime
/// while `cfg.churn_cycles` online reconfigurations fire at even spacing
/// across the measure window. Each cycle flips an extra node in or out of
/// group 0 via `begin_reconfigure`, pushes a 3-publish burst into the
/// handoff window so parking is exercised, then blocks in
/// `complete_reconfigure` until the old epoch drains. Burst messages are
/// the churn population; everything else is steady.
fn run_churn_driver(
    cfg: &LoadConfig,
    m: &Membership,
    items: &[WorkItem],
) -> (DriverReport, ChurnReport) {
    let mut cluster = Cluster::start(
        m,
        ClusterConfig {
            coalesce: true,
            seed: cfg.seed,
            ..ClusterConfig::default()
        },
    );
    let joiner = NodeId(m.num_nodes() as u32 + 7);
    let grown = {
        let mut next = m.clone();
        next.subscribe(joiner, GroupId(0));
        next
    };
    let g0_sender = m.members(GroupId(0)).next().expect("group 0 is non-empty");

    let start = Instant::now();
    let warmup = start + Duration::from_millis(cfg.warmup_ms);
    let allocs_before = allocations();
    let churn_at: Vec<Instant> = (1..=cfg.churn_cycles as u64)
        .map(|i| {
            warmup + Duration::from_micros(i * cfg.measure_ms * 1_000 / (cfg.churn_cycles as u64 + 1))
        })
        .collect();

    let mut all = Histogram::new();
    let mut steady = Histogram::new();
    let mut churn = Histogram::new();
    let mut churn_ids: HashSet<MessageId> = HashSet::new();
    let mut sent_at: HashMap<MessageId, Instant> = HashMap::new();
    let mut expected = 0usize;
    let mut received = 0usize;
    let mut measured = 0u64;
    let mut next = 0usize;
    let mut cycle = 0usize;
    let mut joined = false;

    macro_rules! note {
        ($id:expr, $at:expr) => {
            if let Some(&t0) = sent_at.get(&$id) {
                if t0 >= warmup {
                    let us = $at.duration_since(t0).as_micros() as u64;
                    all.record(us);
                    if churn_ids.contains(&$id) {
                        churn.record(us);
                    } else {
                        steady.record(us);
                    }
                    measured += 1;
                }
            }
        };
    }

    while next < items.len() || cycle < cfg.churn_cycles {
        let now = Instant::now();
        if cycle < cfg.churn_cycles && now >= churn_at[cycle] {
            joined = !joined;
            let next_m = if joined { &grown } else { m };
            cluster.begin_reconfigure(next_m).expect("stage the handoff");
            for _ in 0..3 {
                let id = cluster
                    .publish(g0_sender, GroupId(0), Vec::new())
                    .expect("parked publish inside the handoff window");
                sent_at.insert(id, Instant::now());
                churn_ids.insert(id);
                expected += next_m.group_size(GroupId(0));
            }
            cluster
                .complete_reconfigure(Duration::from_secs(30))
                .expect("handoff drains under live load");
            cycle += 1;
            continue;
        }
        let next_tick = churn_at.get(cycle).copied();
        if next < items.len() {
            let w = &items[next];
            let due = start + Duration::from_micros(w.at_us);
            if now >= due {
                let id = cluster
                    .publish(w.sender, w.group, Vec::new())
                    .expect("open-loop publish");
                sent_at.insert(id, Instant::now());
                // Group 0's audience includes the joiner in odd epochs.
                let cur = if joined { &grown } else { m };
                expected += cur.group_size(w.group);
                next += 1;
                continue;
            }
            let mut wait = due.saturating_duration_since(now);
            if let Some(tick) = next_tick {
                wait = wait.min(tick.saturating_duration_since(now));
            }
            if let Some((_, msg)) = cluster.next_delivery(wait) {
                note!(msg.id, Instant::now());
                received += 1;
            }
        } else {
            // Only churn ticks remain; drain while waiting for them.
            let wait = next_tick
                .map(|tick| tick.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(5))
                .max(Duration::from_millis(1));
            if let Some((_, msg)) = cluster.next_delivery(wait) {
                note!(msg.id, Instant::now());
                received += 1;
            }
        }
    }
    // Drain the tail: everything published must still arrive everywhere.
    let deadline = Instant::now() + Duration::from_secs(30);
    while received < expected && Instant::now() < deadline {
        if let Some((_, msg)) = cluster.next_delivery(Duration::from_millis(20)) {
            note!(msg.id, Instant::now());
            received += 1;
        }
    }
    assert_eq!(received, expected, "churn run lost deliveries");
    assert_eq!(cluster.epoch(), cfg.churn_cycles as u64, "every handoff activated");
    assert!(!cluster.reconfig_pending(), "no handoff left dangling");
    let elapsed = Instant::now().duration_since(warmup).as_secs_f64().max(1e-3);
    cluster.shutdown();
    let batch_sizes = cluster.batch_size_counts();
    let allocs = allocations() - allocs_before;
    (
        DriverReport {
            driver: "runtime",
            time_base: "wall-us",
            published: sent_at.len() as u64,
            delivered: measured,
            msgs_per_sec: measured as f64 / elapsed,
            latency_us: all,
            allocations_per_message: allocs as f64 / (received as u64).max(1) as f64,
            batch_sizes,
            spans: None,
        },
        ChurnReport { cycles: cfg.churn_cycles as u64, steady, churn },
    )
}

/// One rung of the saturation ramp: a full (short) load run at one
/// offered rate, reduced to the numbers the knee rule and the JSON need.
struct SatStep {
    /// Per-publisher open-loop rate this step ran at.
    offered_hz: f64,
    /// Offered delivery rate: `offered_hz × Σ group sizes` (every publish
    /// fans out to its group's members).
    offered_msgs_per_sec: f64,
    /// Wall-clock delivery rate the driver actually sustained. For the
    /// sim driver this is deliveries per *wall* second — virtual time
    /// always keeps up, so its ceiling is where the simulator can no
    /// longer process a second of traffic in a second.
    achieved_msgs_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    delivered: u64,
    allocations_per_message: f64,
}

/// One driver's saturation ramp (BENCH_10): geometric offered-rate steps
/// up to the latency knee.
struct SatReport {
    driver: &'static str,
    steps: Vec<SatStep>,
    /// Index into `steps` of the knee (the last step when no knee was
    /// found within the ramp cap).
    knee: usize,
    /// Whether the knee rule actually fired, or the ramp cap ended the
    /// climb first.
    knee_found: bool,
}

impl SatReport {
    fn max_throughput(&self) -> f64 {
        self.steps.iter().map(|s| s.achieved_msgs_per_sec).fold(0.0, f64::max)
    }
}

/// Achieved throughput below this fraction of offered marks the knee.
const KNEE_ACHIEVED_FACTOR: f64 = 0.9;
/// p99 beyond this multiple of the base step's p99 also marks the knee.
const KNEE_P99_FACTOR: u64 = 5;

/// Runs one driver's closed-loop saturation ramp: starting from the
/// configured rate, each step doubles the offered open-loop rate and
/// replays a freshly generated workload through `run`, until the knee
/// rule fires (achieved < 90% of offered, or p99 > 5× the base step's)
/// or the ramp cap is reached. Returns the ramp plus the base step's full
/// report (which stands in as the driver's BENCH_10 `drivers` entry, so
/// the file keeps the allocations-per-message comparison).
fn run_saturation<F>(
    cfg: &LoadConfig,
    m: &Membership,
    driver: &'static str,
    run: F,
) -> (DriverReport, SatReport)
where
    F: Fn(&LoadConfig, &Membership, &[WorkItem]) -> DriverReport,
{
    let fanout: f64 = m.groups().map(|g| m.group_size(g) as f64).sum();
    let mut steps = Vec::new();
    let mut base_report = None;
    let mut base_p99 = 1u64;
    let mut knee = None;
    for i in 0..cfg.sat_steps {
        let mut step_cfg = cfg.clone();
        step_cfg.rate_hz = cfg.rate_hz * (1u64 << i) as f64;
        let items = workload(&step_cfg, m);
        let wall_start = Instant::now();
        let report = run(&step_cfg, m, &items);
        let wall_s = wall_start.elapsed().as_secs_f64().max(1e-3);
        // Judge every driver on the wall clock: the sim's own
        // msgs_per_sec is per virtual second and tautologically meets the
        // offered rate.
        let achieved = if report.time_base == "virtual-us" {
            report.delivered as f64 / wall_s
        } else {
            report.msgs_per_sec
        };
        let offered = step_cfg.rate_hz * fanout;
        let p99 = report.latency_us.p99().unwrap_or(0);
        if i == 0 {
            base_p99 = p99.max(1);
        }
        steps.push(SatStep {
            offered_hz: step_cfg.rate_hz,
            offered_msgs_per_sec: offered,
            achieved_msgs_per_sec: achieved,
            p50_us: report.latency_us.p50().unwrap_or(0),
            p99_us: p99,
            delivered: report.delivered,
            allocations_per_message: report.allocations_per_message,
        });
        if i == 0 {
            base_report = Some(report);
        }
        let at_knee = achieved < KNEE_ACHIEVED_FACTOR * offered
            || (i > 0 && p99 > KNEE_P99_FACTOR * base_p99);
        if at_knee {
            knee = Some(i);
            break;
        }
    }
    let report = SatReport {
        driver,
        knee: knee.unwrap_or(steps.len() - 1),
        knee_found: knee.is_some(),
        steps,
    };
    (base_report.expect("at least one ramp step"), report)
}

/// One latency-percentile block, shared by the per-driver reports and the
/// churn scenario's steady/churn split.
fn latency_json(h: &Histogram) -> String {
    let q = |v: Option<u64>| v.unwrap_or(0).to_string();
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}, \"max\": {}, \"count\": {}}}",
        q(h.p50()),
        q(h.p95()),
        q(h.p99()),
        h.mean().unwrap_or(0.0),
        q(h.max()),
        h.count()
    )
}

/// The BENCH_9 per-driver stretch-decomposition block. The per-delivery
/// identity (components sum to end-to-end, exactly) carries over to the
/// means because every component histogram covers the same deliveries, so
/// `mean_component_sum_us` must equal `mean_end_to_end_us` up to float
/// rounding — `validate` re-checks it with a 1% tolerance.
fn spans_json(driver: &str, b: &BreakdownHistograms) -> String {
    let block = |h: &Histogram| {
        format!(
            "{{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}, \"max\": {}}}",
            h.p50().unwrap_or(0),
            h.p95().unwrap_or(0),
            h.p99().unwrap_or(0),
            h.mean().unwrap_or(0.0),
            h.max().unwrap_or(0),
        )
    };
    let mean = |h: &Histogram| h.mean().unwrap_or(0.0);
    let component_sum =
        mean(&b.stamp_wait) + mean(&b.wire) + mean(&b.group_gap_wait) + mean(&b.atom_gap_wait);
    format!(
        "{{\n      \"driver\": \"{driver}\",\n      \"complete\": {},\n      \
         \"incomplete\": {},\n      \"stamp_wait_us\": {},\n      \"wire_us\": {},\n      \
         \"group_gap_wait_us\": {},\n      \"atom_gap_wait_us\": {},\n      \
         \"end_to_end_us\": {},\n      \"mean_component_sum_us\": {:.1},\n      \
         \"mean_end_to_end_us\": {:.1}\n    }}",
        b.complete,
        b.incomplete,
        block(&b.stamp_wait),
        block(&b.wire),
        block(&b.group_gap_wait),
        block(&b.atom_gap_wait),
        block(&b.end_to_end),
        component_sum,
        mean(&b.end_to_end),
    )
}

/// The BENCH_10 per-driver saturation block: the ramp's steps, the max
/// sustained throughput, and the knee point.
fn sat_json(s: &SatReport) -> String {
    let step = |st: &SatStep| {
        format!(
            "{{\"offered_hz\": {:.3}, \"offered_msgs_per_sec\": {:.3}, \
             \"achieved_msgs_per_sec\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \
             \"messages_delivered\": {}, \"allocations_per_message\": {:.3}}}",
            st.offered_hz,
            st.offered_msgs_per_sec,
            st.achieved_msgs_per_sec,
            st.p50_us,
            st.p99_us,
            st.delivered,
            st.allocations_per_message,
        )
    };
    let steps = s.steps.iter().map(step).collect::<Vec<_>>().join(",\n        ");
    let knee = &s.steps[s.knee];
    format!(
        "{{\n      \"driver\": \"{}\",\n      \"knee_found\": {},\n      \
         \"max_throughput_msgs_per_sec\": {:.3},\n      \"knee\": {},\n      \
         \"steps\": [\n        {}\n      ]\n    }}",
        s.driver,
        s.knee_found,
        s.max_throughput(),
        step(knee),
        steps,
    )
}

fn report_json(r: &DriverReport) -> String {
    let sizes = r
        .batch_sizes
        .iter()
        .map(|(size, count)| format!("\"{size}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n      \"driver\": \"{}\",\n      \"time_base\": \"{}\",\n      \
         \"messages_published\": {},\n      \"messages_delivered\": {},\n      \
         \"msgs_per_sec\": {:.3},\n      \"delivery_latency_us\": {},\n      \
         \"allocations_per_message\": {:.3},\n      \"batch_sizes\": {{{}}}\n    }}",
        r.driver,
        r.time_base,
        r.published,
        r.delivered,
        r.msgs_per_sec,
        latency_json(&r.latency_us),
        r.allocations_per_message,
        sizes
    )
}

fn write_json(
    cfg: &LoadConfig,
    reports: &[DriverReport],
    churn: Option<&ChurnReport>,
    sats: &[SatReport],
) {
    let bench = if cfg.saturate {
        "BENCH_10"
    } else if cfg.spans {
        "BENCH_9"
    } else if churn.is_some() {
        "BENCH_8"
    } else {
        "BENCH_6"
    };
    let drivers = reports.iter().map(report_json).collect::<Vec<_>>().join(",\n    ");
    let mut churn_block = churn
        .map(|c| {
            format!(
                ",\n  \"churn\": {{\n    \"cycles\": {},\n    \
                 \"steady_latency_us\": {},\n    \"churn_latency_us\": {}\n  }}",
                c.cycles,
                latency_json(&c.steady),
                latency_json(&c.churn)
            )
        })
        .unwrap_or_default();
    if cfg.spans {
        let blocks = reports
            .iter()
            .filter_map(|r| r.spans.as_ref().map(|b| spans_json(r.driver, b)))
            .collect::<Vec<_>>()
            .join(",\n    ");
        churn_block = format!(",\n  \"spans\": [\n    {blocks}\n  ]");
    }
    if cfg.saturate {
        let blocks = sats.iter().map(sat_json).collect::<Vec<_>>().join(",\n    ");
        churn_block = format!(",\n  \"saturation\": [\n    {blocks}\n  ]");
    }
    let json = format!(
        "{{\n  \"bench\": \"{}\",\n  \"schema_version\": 1,\n  \"seed\": {},\n  \
         \"workload\": {{\n    \"mode\": \"{}\",\n    \"groups\": {},\n    \"overlap\": {},\n    \
         \"rate_hz\": {:.3},\n    \"chains\": {},\n    \"warmup_ms\": {},\n    \
         \"measure_ms\": {},\n    \"churn_cycles\": {},\n    \"smoke\": {}\n  }},\n  \
         \"drivers\": [\n    {}\n  ]{}\n}}\n",
        bench,
        cfg.seed,
        cfg.mode.name(),
        cfg.groups,
        cfg.overlap,
        cfg.rate_hz,
        cfg.chains,
        cfg.warmup_ms,
        cfg.measure_ms,
        cfg.churn_cycles,
        cfg.smoke,
        drivers,
        churn_block
    );
    if let Some(dir) = std::path::Path::new(&cfg.out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&cfg.out, json).expect("write BENCH json");
    println!("wrote {}", cfg.out);
}

fn cmd_load(args: &[String]) {
    let cfg = parse_load(args);
    let m = membership(cfg.groups, cfg.overlap);
    let items = workload(&cfg, &m);
    let mut reports = Vec::new();
    let mut churn_report = None;
    let mut sat_reports: Vec<SatReport> = Vec::new();
    if cfg.saturate {
        // The saturation scenario: one geometric offered-rate ramp per
        // driver; the base step of each ramp doubles as the driver's
        // ordinary report so allocations stay comparable across drivers.
        if matches!(cfg.driver, Driver::Sim | Driver::Both | Driver::All) {
            let (report, sat) = run_saturation(&cfg, &m, "sim", run_sim_driver);
            reports.push(report);
            sat_reports.push(sat);
        }
        if matches!(cfg.driver, Driver::Runtime | Driver::Both | Driver::All) {
            let (report, sat) = run_saturation(&cfg, &m, "runtime", run_runtime_driver);
            reports.push(report);
            sat_reports.push(sat);
        }
        if matches!(cfg.driver, Driver::Socket | Driver::All) {
            let (report, sat) = run_saturation(&cfg, &m, "socket", run_socket_driver);
            reports.push(report);
            sat_reports.push(sat);
        }
    } else if cfg.churn_cycles > 0 {
        // The churn scenario is a wall-clock handoff benchmark; the
        // threaded runtime is the one driver whose drain rule runs in
        // real time without per-process orchestration overhead skewing
        // the parked-latency numbers.
        let (report, churn) = run_churn_driver(&cfg, &m, &items);
        reports.push(report);
        churn_report = Some(churn);
    } else {
        if matches!(cfg.driver, Driver::Sim | Driver::Both | Driver::All) {
            reports.push(run_sim_driver(&cfg, &m, &items));
        }
        if matches!(cfg.driver, Driver::Runtime | Driver::Both | Driver::All) {
            reports.push(run_runtime_driver(&cfg, &m, &items));
        }
        if matches!(cfg.driver, Driver::Socket | Driver::All) {
            reports.push(run_socket_driver(&cfg, &m, &items));
        }
    }
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.driver.to_string(),
                r.published.to_string(),
                r.delivered.to_string(),
                f3(r.msgs_per_sec),
                r.latency_us.p50().unwrap_or(0).to_string(),
                r.latency_us.p95().unwrap_or(0).to_string(),
                r.latency_us.p99().unwrap_or(0).to_string(),
                f3(r.allocations_per_message),
                r.batch_sizes.keys().max().copied().unwrap_or(0).to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("seqnet-bench load ({}-loop, seed {})", cfg.mode.name(), cfg.seed),
        &[
            "driver", "published", "measured", "msgs/s", "p50us", "p95us", "p99us",
            "allocs/msg", "max batch",
        ],
        &rows,
    );
    if let Some(c) = &churn_report {
        let lat_row = |name: &str, h: &Histogram| {
            vec![
                name.to_string(),
                h.count().to_string(),
                h.p50().unwrap_or(0).to_string(),
                h.p95().unwrap_or(0).to_string(),
                h.p99().unwrap_or(0).to_string(),
                h.max().unwrap_or(0).to_string(),
            ]
        };
        print_table(
            &format!("churn split ({} reconfigurations)", c.cycles),
            &["phase", "count", "p50us", "p95us", "p99us", "maxus"],
            &[lat_row("steady", &c.steady), lat_row("churn", &c.churn)],
        );
    }
    let span_rows: Vec<Vec<String>> = reports
        .iter()
        .filter_map(|r| r.spans.as_ref().map(|b| (r.driver, b)))
        .map(|(driver, b)| {
            let p50 = |h: &Histogram| h.p50().unwrap_or(0).to_string();
            vec![
                driver.to_string(),
                b.complete.to_string(),
                b.incomplete.to_string(),
                p50(&b.stamp_wait),
                p50(&b.wire),
                p50(&b.group_gap_wait),
                p50(&b.atom_gap_wait),
                p50(&b.end_to_end),
            ]
        })
        .collect();
    if !span_rows.is_empty() {
        print_table(
            "latency-stretch decomposition (per-component p50 us)",
            &[
                "driver", "complete", "incomplete", "stamp", "wire", "group gap", "atom gap",
                "e2e",
            ],
            &span_rows,
        );
    }
    for sat in &sat_reports {
        let rows: Vec<Vec<String>> = sat
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                vec![
                    if sat.knee_found && i == sat.knee { "knee".to_string() } else { i.to_string() },
                    f3(s.offered_msgs_per_sec),
                    f3(s.achieved_msgs_per_sec),
                    s.p50_us.to_string(),
                    s.p99_us.to_string(),
                    f3(s.allocations_per_message),
                ]
            })
            .collect();
        print_table(
            &format!(
                "saturation ramp: {} (max {} msgs/s{})",
                sat.driver,
                f3(sat.max_throughput()),
                if sat.knee_found { "" } else { ", no knee within ramp" }
            ),
            &["step", "offered/s", "achieved/s", "p50us", "p99us", "allocs/msg"],
            &rows,
        );
    }
    write_json(&cfg, &reports, churn_report.as_ref(), &sat_reports);
}

// ---------------------------------------------------------------------------
// `validate`: a dependency-free JSON reader plus the BENCH_* schema checks.
// ---------------------------------------------------------------------------

/// A minimal JSON value — just enough to validate the bench schema.
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }
    fn error(&self, what: &str) -> ! {
        panic!("invalid JSON at byte {}: {what}", self.pos)
    }
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
    fn peek(&mut self) -> u8 {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            self.error("unexpected end of input")
        }
        self.bytes[self.pos]
    }
    fn eat(&mut self, b: u8) {
        if self.peek() != b {
            self.error(&format!("expected {:?}", b as char))
        }
        self.pos += 1;
    }
    fn eat_lit(&mut self, lit: &str) {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
        } else {
            self.error(&format!("expected {lit}"))
        }
    }
    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => {
                self.eat(b'{');
                let mut fields = Vec::new();
                if self.peek() != b'}' {
                    loop {
                        let key = self.string();
                        self.eat(b':');
                        fields.push((key, self.value()));
                        if self.peek() == b',' {
                            self.eat(b',');
                        } else {
                            break;
                        }
                    }
                }
                self.eat(b'}');
                Json::Obj(fields)
            }
            b'[' => {
                self.eat(b'[');
                let mut items = Vec::new();
                if self.peek() != b']' {
                    loop {
                        items.push(self.value());
                        if self.peek() == b',' {
                            self.eat(b',');
                        } else {
                            break;
                        }
                    }
                }
                self.eat(b']');
                Json::Arr(items)
            }
            b'"' => Json::Str(self.string()),
            b't' => {
                self.eat_lit("true");
                Json::Bool(true)
            }
            b'f' => {
                self.eat_lit("false");
                Json::Bool(false)
            }
            b'n' => {
                self.eat_lit("null");
                Json::Null
            }
            _ => {
                let start = self.pos;
                while self.pos < self.bytes.len()
                    && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                Json::Num(text.parse().unwrap_or_else(|_| self.error("bad number")))
            }
        }
    }
    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                self.error("unterminated string")
            }
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().unwrap_or(b'"');
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                other => {
                    out.push(other as char);
                    self.pos += 1;
                }
            }
        }
    }
}

/// Validates one BENCH_*.json against the schema `results/README.md`
/// documents. Process exit code is the CI contract: 0 valid, 1 invalid.
fn cmd_validate(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| { eprintln!("cannot read {path}: {e}"); std::process::exit(1) });
    let mut parser = Parser::new(&text);
    let doc = parser.value();
    let mut errors: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            errors.push(what.to_string());
        }
    };

    check(
        doc.get("bench").and_then(Json::str).map(|b| b.starts_with("BENCH_")) == Some(true),
        "top-level \"bench\" must be a \"BENCH_*\" string",
    );
    check(
        doc.get("schema_version").and_then(Json::num) == Some(1.0),
        "\"schema_version\" must be 1",
    );
    check(doc.get("seed").and_then(Json::num).is_some(), "\"seed\" must be a number");
    let workload = doc.get("workload");
    check(workload.is_some(), "\"workload\" object missing");
    if let Some(w) = workload {
        check(
            matches!(w.get("mode").and_then(Json::str), Some("open") | Some("closed")),
            "workload.mode must be \"open\" or \"closed\"",
        );
        for key in ["groups", "overlap", "rate_hz", "chains", "warmup_ms", "measure_ms"] {
            check(
                w.get(key).and_then(Json::num).is_some(),
                &format!("workload.{key} must be a number"),
            );
        }
        check(
            matches!(w.get("smoke"), Some(Json::Bool(_))),
            "workload.smoke must be a bool",
        );
    }
    match doc.get("drivers") {
        Some(Json::Arr(drivers)) if !drivers.is_empty() => {
            for (i, d) in drivers.iter().enumerate() {
                let at = |what: &str| format!("drivers[{i}].{what}");
                check(
                    matches!(
                        d.get("driver").and_then(Json::str),
                        Some("sim") | Some("runtime") | Some("socket")
                    ),
                    &at("driver must be \"sim\", \"runtime\" or \"socket\""),
                );
                check(
                    matches!(
                        d.get("time_base").and_then(Json::str),
                        Some("virtual-us") | Some("wall-us")
                    ),
                    &at("time_base must be \"virtual-us\" or \"wall-us\""),
                );
                for key in ["messages_published", "messages_delivered", "allocations_per_message"] {
                    check(
                        d.get(key).and_then(Json::num).map_or(false, |n| n >= 0.0),
                        &at(&format!("{key} must be a non-negative number")),
                    );
                }
                check(
                    d.get("msgs_per_sec").and_then(Json::num).map_or(false, |n| n > 0.0),
                    &at("msgs_per_sec must be positive"),
                );
                match d.get("delivery_latency_us") {
                    Some(lat) => {
                        let pct = |k: &str| lat.get(k).and_then(Json::num);
                        for key in ["p50", "p95", "p99", "mean", "max", "count"] {
                            check(pct(key).is_some(), &at(&format!("delivery_latency_us.{key}")));
                        }
                        if let (Some(p50), Some(p95), Some(p99)) =
                            (pct("p50"), pct("p95"), pct("p99"))
                        {
                            check(
                                p50 <= p95 && p95 <= p99,
                                &at("latency percentiles must be non-decreasing"),
                            );
                        }
                    }
                    None => check(false, &at("delivery_latency_us object missing")),
                }
                match d.get("batch_sizes") {
                    Some(Json::Obj(sizes)) => {
                        for (size, count) in sizes {
                            check(
                                size.parse::<usize>().map_or(false, |s| s >= 1),
                                &at("batch_sizes keys must be positive integers"),
                            );
                            check(
                                count.num().map_or(false, |c| c >= 1.0),
                                &at("batch_sizes counts must be positive"),
                            );
                        }
                    }
                    _ => check(false, &at("batch_sizes object missing")),
                }
            }
        }
        _ => check(false, "\"drivers\" must be a non-empty array"),
    }
    // BENCH_8 (the churn scenario) additionally carries the steady/churn
    // latency split; a stray "churn" object on any other bench is a bug.
    let is_churn = doc.get("bench").and_then(Json::str) == Some("BENCH_8");
    if is_churn {
        match doc.get("churn") {
            Some(c) => {
                check(
                    c.get("cycles").and_then(Json::num).map_or(false, |n| n >= 1.0),
                    "churn.cycles must be at least 1",
                );
                for block in ["steady_latency_us", "churn_latency_us"] {
                    match c.get(block) {
                        Some(lat) => {
                            let pct = |k: &str| lat.get(k).and_then(Json::num);
                            for key in ["p50", "p95", "p99", "mean", "max", "count"] {
                                check(pct(key).is_some(), &format!("churn.{block}.{key}"));
                            }
                            if let (Some(p50), Some(p95), Some(p99)) =
                                (pct("p50"), pct("p95"), pct("p99"))
                            {
                                check(
                                    p50 <= p95 && p95 <= p99,
                                    &format!("churn.{block} percentiles must be non-decreasing"),
                                );
                            }
                            check(
                                pct("count").map_or(false, |n| n >= 1.0),
                                &format!("churn.{block}.count must be positive"),
                            );
                        }
                        None => check(false, &format!("churn.{block} object missing")),
                    }
                }
            }
            None => check(false, "BENCH_8 requires a \"churn\" object"),
        }
    } else {
        check(
            doc.get("churn").is_none(),
            "only BENCH_8 carries a \"churn\" object",
        );
    }
    // BENCH_9 (the stretch-decomposition scenario) carries the per-driver
    // spans blocks; a stray "spans" array on any other bench is a bug.
    let is_spans = doc.get("bench").and_then(Json::str) == Some("BENCH_9");
    if is_spans {
        match doc.get("spans") {
            Some(Json::Arr(blocks)) if !blocks.is_empty() => {
                for (i, b) in blocks.iter().enumerate() {
                    let at = |what: &str| format!("spans[{i}].{what}");
                    check(
                        matches!(
                            b.get("driver").and_then(Json::str),
                            Some("sim") | Some("runtime") | Some("socket")
                        ),
                        &at("driver must be \"sim\", \"runtime\" or \"socket\""),
                    );
                    check(
                        b.get("complete").and_then(Json::num).is_some_and(|n| n >= 1.0),
                        &at("complete must be at least 1"),
                    );
                    check(
                        b.get("incomplete").and_then(Json::num).is_some_and(|n| n >= 0.0),
                        &at("incomplete must be a non-negative number"),
                    );
                    for comp in [
                        "stamp_wait_us",
                        "wire_us",
                        "group_gap_wait_us",
                        "atom_gap_wait_us",
                        "end_to_end_us",
                    ] {
                        match b.get(comp) {
                            Some(block) => {
                                for key in ["p50", "p95", "p99", "mean", "max"] {
                                    check(
                                        block.get(key).and_then(Json::num).is_some(),
                                        &at(&format!("{comp}.{key} must be a number")),
                                    );
                                }
                            }
                            None => check(false, &at(&format!("{comp} object missing"))),
                        }
                    }
                    // The decomposition identity: per delivery the four
                    // components sum exactly to end-to-end, so the means
                    // must agree up to rounding.
                    if let (Some(sum), Some(e2e)) = (
                        b.get("mean_component_sum_us").and_then(Json::num),
                        b.get("mean_end_to_end_us").and_then(Json::num),
                    ) {
                        check(
                            (sum - e2e).abs() <= (e2e * 0.01).max(1.0),
                            &at("mean_component_sum_us must equal mean_end_to_end_us (1% tolerance)"),
                        );
                    } else {
                        check(false, &at("mean_component_sum_us / mean_end_to_end_us missing"));
                    }
                }
            }
            _ => check(false, "BENCH_9 requires a non-empty \"spans\" array"),
        }
    } else {
        check(
            doc.get("spans").is_none(),
            "only BENCH_9 carries a \"spans\" array",
        );
    }
    // BENCH_10 (the saturation scenario) carries the per-driver ramp
    // blocks; a stray "saturation" array on any other bench is a bug.
    fn sat_step_fields(s: &Json, at: &str, errors: &mut Vec<String>) {
        for key in ["offered_hz", "offered_msgs_per_sec", "achieved_msgs_per_sec"] {
            if !s.get(key).and_then(Json::num).is_some_and(|n| n > 0.0) {
                errors.push(format!("{at}.{key} must be positive"));
            }
        }
        for key in ["p50_us", "p99_us", "messages_delivered", "allocations_per_message"] {
            if !s.get(key).and_then(Json::num).is_some_and(|n| n >= 0.0) {
                errors.push(format!("{at}.{key} must be a non-negative number"));
            }
        }
    }
    let mut sat_errors: Vec<String> = Vec::new();
    let is_sat = doc.get("bench").and_then(Json::str) == Some("BENCH_10");
    if is_sat {
        match doc.get("saturation") {
            Some(Json::Arr(blocks)) if !blocks.is_empty() => {
                for (i, b) in blocks.iter().enumerate() {
                    let at = |what: &str| format!("saturation[{i}].{what}");
                    if !matches!(
                        b.get("driver").and_then(Json::str),
                        Some("sim") | Some("runtime") | Some("socket")
                    ) {
                        sat_errors.push(at("driver must be \"sim\", \"runtime\" or \"socket\""));
                    }
                    if !matches!(b.get("knee_found"), Some(Json::Bool(_))) {
                        sat_errors.push(at("knee_found must be a bool"));
                    }
                    let max_tp = b.get("max_throughput_msgs_per_sec").and_then(Json::num);
                    if !max_tp.is_some_and(|n| n > 0.0) {
                        sat_errors.push(at("max_throughput_msgs_per_sec must be positive"));
                    }
                    match b.get("steps") {
                        Some(Json::Arr(steps)) if !steps.is_empty() => {
                            let mut best = 0.0f64;
                            let mut prev_offered = 0.0f64;
                            for (j, s) in steps.iter().enumerate() {
                                sat_step_fields(s, &at(&format!("steps[{j}]")), &mut sat_errors);
                                let offered =
                                    s.get("offered_msgs_per_sec").and_then(Json::num).unwrap_or(0.0);
                                if offered <= prev_offered {
                                    sat_errors.push(at("steps offered rate must strictly increase"));
                                }
                                prev_offered = offered;
                                best = best.max(
                                    s.get("achieved_msgs_per_sec")
                                        .and_then(Json::num)
                                        .unwrap_or(0.0),
                                );
                            }
                            if let Some(max_tp) = max_tp {
                                if (max_tp - best).abs() > best * 0.001 + 0.001 {
                                    sat_errors
                                        .push(at("max_throughput_msgs_per_sec must equal the best step"));
                                }
                            }
                        }
                        _ => sat_errors.push(at("steps must be a non-empty array")),
                    }
                    match b.get("knee") {
                        Some(k) => sat_step_fields(k, &at("knee"), &mut sat_errors),
                        None => sat_errors.push(at("knee object missing")),
                    }
                }
            }
            _ => sat_errors.push("BENCH_10 requires a non-empty \"saturation\" array".to_string()),
        }
        // The saturation file is also the allocation-diet scoreboard: the
        // runtime's scratch-buffer wire path must not allocate more per
        // message than the simulator's batched channel pumps.
        if let Some(Json::Arr(drivers)) = doc.get("drivers") {
            let allocs = |name: &str| {
                drivers
                    .iter()
                    .find(|d| d.get("driver").and_then(Json::str) == Some(name))
                    .and_then(|d| d.get("allocations_per_message"))
                    .and_then(Json::num)
            };
            if let (Some(sim), Some(runtime)) = (allocs("sim"), allocs("runtime")) {
                if runtime > sim * 1.1 {
                    sat_errors.push(
                        "BENCH_10: runtime allocations_per_message must not exceed sim's \
                         (10% tolerance)"
                            .to_string(),
                    );
                }
            }
        }
    } else if doc.get("saturation").is_some() {
        sat_errors.push("only BENCH_10 carries a \"saturation\" array".to_string());
    }
    for e in sat_errors {
        check(false, &e);
    }

    if errors.is_empty() {
        println!("{path}: valid — schema_version 1, all checks passed");
    } else {
        eprintln!("{path}: INVALID");
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
}

fn main() {
    // If the socket driver spawned this binary as a sequencing-node
    // process, become that node and never return.
    seqnet_deploy::run_if_child();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("load") => cmd_load(&args[1..]),
        Some("validate") => {
            let path = args.get(1).map(String::as_str).unwrap_or("results/BENCH_6.json");
            cmd_validate(path);
        }
        _ => usage(),
    }
}
