//! Figure 7: cumulative distribution of the ratio between the number of
//! sequencing atoms on a message's path and the total number of nodes, for
//! 128 subscribers and varying group counts.
//!
//! Paper result: even in the worst case the ratio stays below 0.5 — a
//! message collects far fewer sequence numbers than a system-wide vector
//! timestamp has entries, so the scheme wins whenever nodes outnumber
//! groups (§4.4).

use seqnet_bench::experiments::{atoms_on_path, structural_zipf};
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_overlap::stats::{cdf, mean, percentile};

fn main() {
    let scale = ExperimentScale::from_env();
    let num_nodes = scale.num_hosts();
    let trials = scale.trials(20);
    let group_counts: &[usize] = if scale.paper {
        &[8, 16, 32, 64]
    } else {
        &[4, 8]
    };

    let mut summary = Vec::new();
    let mut cdf_rows = Vec::new();
    for &groups in group_counts {
        let mut stamp_ratios = Vec::new();
        let mut path_ratios = Vec::new();
        for t in 0..trials {
            let sample = structural_zipf(num_nodes, groups, 0xF1907 + (t * 1000 + groups) as u64);
            for (stamps, path_len) in atoms_on_path(&sample) {
                stamp_ratios.push(stamps as f64 / num_nodes as f64);
                path_ratios.push(path_len as f64 / num_nodes as f64);
            }
        }
        for (v, frac) in cdf(&stamp_ratios) {
            cdf_rows.push(vec![groups.to_string(), f3(v), f3(frac)]);
        }
        summary.push(vec![
            groups.to_string(),
            f3(mean(&stamp_ratios)),
            f3(percentile(&stamp_ratios, 100.0)),
            f3(mean(&path_ratios)),
            f3(percentile(&path_ratios, 100.0)),
        ]);
    }

    print_table(
        &format!("Figure 7: sequencing atoms per path / nodes ({num_nodes} nodes)"),
        &[
            "groups",
            "mean stamps/nodes",
            "max stamps/nodes",
            "mean path/nodes",
            "max path/nodes",
        ],
        &summary,
    );
    let path = save_csv("fig7_atoms_on_path", &["groups", "ratio", "cdf"], &cdf_rows);
    println!("\nCDF written to {path}");
}
