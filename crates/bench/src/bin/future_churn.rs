//! Paper §5 future work: "whether sequencing networks perform well even
//! when incrementally updated as groups and nodes join and leave very
//! often."
//!
//! Replays a churn trace (group adds/removes) against the incremental
//! graph and against full rebuilds, reporting update cost and the
//! structural drift (retired transit atoms, path inflation) that lazy
//! removal accumulates until compaction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::GraphBuilder;
use std::time::Instant;

fn main() {
    let scale = ExperimentScale::from_env();
    let num_nodes = scale.num_hosts() as u32;
    let epochs = if scale.paper { 200 } else { 40 };
    let report_every = epochs / 10;

    let mut rng = StdRng::seed_from_u64(0xC4012);
    let mut dyng = GraphBuilder::new().dynamic();
    let mut live: Vec<GroupId> = Vec::new();
    let mut next_group = 0u32;

    let mut incremental_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    let mut rows = Vec::new();

    for epoch in 1..=epochs {
        // Churn step: 60% add, 40% remove once warmed up.
        let t0 = Instant::now();
        if live.len() < 4 || rng.gen_bool(0.6) {
            let gid = GroupId(next_group);
            next_group += 1;
            let size = rng.gen_range(2..10);
            let members: std::collections::BTreeSet<NodeId> =
                (0..size).map(|_| NodeId(rng.gen_range(0..num_nodes))).collect();
            dyng.add_group(gid, members);
            live.push(gid);
        } else {
            let idx = rng.gen_range(0..live.len());
            dyng.remove_group(live.swap_remove(idx));
        }
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;
        incremental_total += incremental_ms;

        // Cost of rebuilding from scratch instead.
        let t1 = Instant::now();
        let rebuilt = GraphBuilder::new().build(dyng.membership());
        let rebuild_ms = t1.elapsed().as_secs_f64() * 1e3;
        rebuild_total += rebuild_ms;

        let graph = dyng.graph();
        graph
            .validate_against(dyng.membership())
            .expect("incremental graph stays valid under churn");

        if epoch % report_every == 0 {
            // Path inflation: live-path atoms incremental vs rebuilt.
            let inc_path: usize = graph.paths().map(|(_, p)| p.len()).sum();
            let reb_path: usize = rebuilt.paths().map(|(_, p)| p.len()).sum();
            rows.push(vec![
                epoch.to_string(),
                live.len().to_string(),
                graph.num_overlap_atoms().to_string(),
                dyng.num_retired().to_string(),
                inc_path.to_string(),
                reb_path.to_string(),
                f3(incremental_total / epoch as f64),
                f3(rebuild_total / epoch as f64),
            ]);
        }
    }

    print_table(
        &format!("Future work: incremental updates under churn ({num_nodes} nodes, {epochs} epochs)"),
        &[
            "epoch",
            "groups",
            "live atoms",
            "retired",
            "inc path atoms",
            "rebuilt path atoms",
            "avg inc ms",
            "avg rebuild ms",
        ],
        &rows,
    );
    let path = save_csv(
        "future_churn",
        &[
            "epoch",
            "groups",
            "live_atoms",
            "retired",
            "inc_path_atoms",
            "rebuilt_path_atoms",
            "avg_inc_ms",
            "avg_rebuild_ms",
        ],
        &rows,
    );
    println!("\nTable written to {path}");
    println!("(Retired atoms are transit-only overhead until compaction; the paper's");
    println!(" lazy-removal rule trades this drift for cheap updates.)");
}
