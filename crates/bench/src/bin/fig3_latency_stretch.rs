//! Figure 3: cumulative distribution of per-destination latency stretch
//! for 128 subscriber nodes and 8/16/32/64 groups.
//!
//! Paper result: stretch ≤ ~2.5 at 8 groups; sub-linear growth with the
//! number of groups; maximum < 8 at 64 groups.

use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_overlap::stats::{cdf, mean, percentile};

fn main() {
    let scale = ExperimentScale::from_env();
    let group_counts = [8usize, 16, 32, 64];
    let trials = scale.trials(5);

    let mut summary_rows = Vec::new();
    let mut cdf_rows = Vec::new();
    for &groups in &group_counts {
        let mut values = Vec::new();
        for t in 0..trials {
            values.extend(seqnet_bench::experiments::latency_stretch(
                scale,
                groups,
                0xF1900 + t as u64,
            ));
        }
        for (v, frac) in cdf(&values) {
            cdf_rows.push(vec![groups.to_string(), f3(v), f3(frac)]);
        }
        summary_rows.push(vec![
            groups.to_string(),
            values.len().to_string(),
            f3(mean(&values)),
            f3(percentile(&values, 50.0)),
            f3(percentile(&values, 90.0)),
            f3(percentile(&values, 95.0)),
            f3(percentile(&values, 99.0)),
            f3(percentile(&values, 100.0)),
        ]);
    }

    print_table(
        "Figure 3: latency stretch by destination (sequencers vs direct unicast)",
        &["groups", "destinations", "mean", "p50", "p90", "p95", "p99", "max"],
        &summary_rows,
    );
    let path = save_csv(
        "fig3_latency_stretch",
        &["groups", "stretch", "cdf"],
        &cdf_rows,
    );
    let summary_path = save_csv(
        "fig3_latency_stretch_summary",
        &["groups", "destinations", "mean", "p50", "p90", "p95", "p99", "max"],
        &summary_rows,
    );
    println!("\nCDF written to {path}");
    println!("Percentile summary written to {summary_path}");
}
