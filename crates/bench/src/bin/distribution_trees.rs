//! Distribution-phase substrate study: delivery trees vs unicast fan-out.
//!
//! The paper hands messages leaving the sequencing network "to a delivery
//! tree and on to group members" (§3.1) and models per-member latency as
//! the shortest path (identical for tree and unicast). What the tree buys
//! is *link stress*: shared upstream links carry one copy instead of one
//! per member.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_core::NetworkSetup;
use seqnet_membership::workload::ZipfGroups;
use seqnet_topology::{DeliveryTree, HostId, RouterId};

fn main() {
    let scale = ExperimentScale::from_env();
    let num_groups = if scale.paper { 32 } else { 6 };
    let mut rng = StdRng::seed_from_u64(0xD157);
    let setup = NetworkSetup::generate(
        &scale.topology(),
        scale.num_hosts(),
        scale.cluster_size(),
        &mut rng,
    );
    let membership = ZipfGroups::new(scale.num_hosts(), num_groups).sample(&mut rng);

    let mut rows = Vec::new();
    let mut total_tree = 0usize;
    let mut total_unicast = 0usize;
    for group in membership.groups().collect::<Vec<_>>() {
        let members: Vec<RouterId> = membership
            .members(group)
            .map(|n| setup.hosts.router_of(HostId(n.0)))
            .collect();
        if members.len() < 2 {
            continue;
        }
        // Egress at the first member's router (a co-location anchor).
        let source = members[0];
        let tree = DeliveryTree::build(&setup.topology.graph, source, &members[1..]);
        let tree_links = tree.num_links();
        let unicast_links = tree.unicast_link_crossings(&setup.topology.graph);
        let max_stress = tree
            .unicast_link_stress(&setup.topology.graph)
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        total_tree += tree_links;
        total_unicast += unicast_links;
        rows.push(vec![
            group.to_string(),
            members.len().to_string(),
            tree_links.to_string(),
            unicast_links.to_string(),
            max_stress.to_string(),
            f3(unicast_links as f64 / tree_links.max(1) as f64),
        ]);
    }

    print_table(
        &format!("Distribution: delivery tree vs unicast fan-out ({num_groups} groups)"),
        &[
            "group",
            "members",
            "tree links",
            "unicast crossings",
            "max unicast stress",
            "savings",
        ],
        &rows,
    );
    println!(
        "\ntotals: tree {total_tree} links vs unicast {total_unicast} crossings ({:.2}x saved)",
        total_unicast as f64 / total_tree.max(1) as f64
    );
    let path = save_csv(
        "distribution_trees",
        &["group", "members", "tree_links", "unicast_crossings", "max_stress", "savings"],
        &rows,
    );
    println!("Table written to {path}");
}
