//! Figure 8: number of sequencing nodes and double overlaps vs expected
//! group occupancy, for 128 subscriber nodes and 32 groups.
//!
//! Paper result: both rise until ~0.2 occupancy; beyond that, overlaps
//! increasingly share members and co-locate, so the node count gradually
//! falls; above ~0.9 the overlaps span the whole population and a single
//! sequencing node remains.

use seqnet_bench::experiments::{sequencing_nodes, structural_occupancy};
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_overlap::stats::mean;

fn main() {
    let scale = ExperimentScale::from_env();
    let num_nodes = scale.num_hosts();
    let num_groups = if scale.paper { 32 } else { 8 };
    let trials = scale.trials(20);

    let mut rows = Vec::new();
    let steps = 21;
    for step in 0..steps {
        let occupancy = step as f64 / (steps - 1) as f64;
        let mut overlaps = Vec::new();
        let mut nodes = Vec::new();
        for t in 0..trials {
            let sample = structural_occupancy(
                num_nodes,
                num_groups,
                occupancy,
                0xF1908 + (t * 100 + step) as u64,
            );
            overlaps.push(sample.num_overlaps as f64);
            nodes.push(sequencing_nodes(&sample) as f64);
        }
        rows.push(vec![
            f3(occupancy),
            f3(mean(&overlaps)),
            f3(mean(&nodes)),
        ]);
    }

    print_table(
        &format!("Figure 8: occupancy sweep ({num_nodes} nodes, {num_groups} groups, {trials} trials)"),
        &["occupancy", "double overlaps", "sequencing nodes"],
        &rows,
    );
    let path = save_csv(
        "fig8_occupancy",
        &["occupancy", "overlaps", "nodes"],
        &rows,
    );
    println!("\nSeries written to {path}");
}
