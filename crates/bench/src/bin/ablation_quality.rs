//! Quality ablation: how much do the paper's §3.4 heuristics buy?
//!
//! Runs the Figure 3 workload under combinations of the design knobs —
//! atom co-location, anchored placement seeds, the machine-mapping
//! heuristic, and chain-span optimization — and reports latency stretch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_core::{metrics, NetworkConfig, NetworkSetup, OrderedPubSub};
use seqnet_membership::workload::ZipfGroups;
use seqnet_overlap::stats::{mean, percentile};

fn run_variant(
    scale: ExperimentScale,
    num_groups: usize,
    config: NetworkConfig,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let setup = NetworkSetup::generate(
        &scale.topology(),
        scale.num_hosts(),
        scale.cluster_size(),
        &mut rng,
    );
    let membership = ZipfGroups::new(scale.num_hosts(), num_groups).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network_config(&membership, &setup, config, &mut rng);
    for node in membership.nodes().collect::<Vec<_>>() {
        for group in membership.groups_of(node).collect::<Vec<_>>() {
            bus.publish(node, group, vec![]).expect("exists");
        }
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);
    metrics::stretch_by_destination(bus.all_deliveries())
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

fn main() {
    let scale = ExperimentScale::from_env();
    let num_groups = if scale.paper { 32 } else { 6 };
    let trials = scale.trials(3);

    let full = NetworkConfig::default();
    let variants: Vec<(&str, NetworkConfig)> = vec![
        ("full (paper)", full),
        (
            "no co-location",
            NetworkConfig {
                colocate: false,
                ..full
            },
        ),
        (
            "unanchored seeds",
            NetworkConfig {
                anchored: false,
                ..full
            },
        ),
        (
            "random machines",
            NetworkConfig {
                heuristic_placement: false,
                ..full
            },
        ),
        (
            "no chain optimization",
            NetworkConfig {
                optimize_chains: false,
                ..full
            },
        ),
        (
            "everything off",
            NetworkConfig {
                colocate: false,
                anchored: false,
                heuristic_placement: false,
                optimize_chains: false,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, config) in &variants {
        let mut values = Vec::new();
        for t in 0..trials {
            values.extend(run_variant(scale, num_groups, *config, 0xAB1A + t as u64));
        }
        rows.push(vec![
            name.to_string(),
            f3(mean(&values)),
            f3(percentile(&values, 50.0)),
            f3(percentile(&values, 90.0)),
            f3(percentile(&values, 100.0)),
        ]);
    }

    print_table(
        &format!("Ablation: latency stretch by design knob ({num_groups} groups)"),
        &["variant", "mean", "p50", "p90", "max"],
        &rows,
    );
    let path = save_csv(
        "ablation_quality",
        &["variant", "mean", "p50", "p90", "max"],
        &rows,
    );
    println!("\nTable written to {path}");
}
