//! Sustained-load study: ordering-buffer behavior as the publish rate
//! rises (an extension beyond the paper's one-shot workload).
//!
//! Every member of every group publishes as a Poisson source; the sweep
//! raises the per-publisher rate and reports end-to-end latency, the time
//! messages spend buffered waiting for predecessors, and the receiver
//! buffer high-water mark. Without queuing in the network model, any
//! buffering comes purely from cross-group ordering.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_core::traffic::{drive, Arrivals, PublisherSpec};
use seqnet_core::{metrics, NetworkSetup, OrderedPubSub};
use seqnet_membership::workload::ZipfGroups;
use seqnet_sim::SimTime;

fn main() {
    let scale = ExperimentScale::from_env();
    let num_groups = if scale.paper { 16 } else { 4 };
    let horizon = SimTime::from_ms(if scale.paper { 2_000.0 } else { 300.0 });

    let mut rng = StdRng::seed_from_u64(0x10AD);
    let setup = NetworkSetup::generate(
        &scale.topology(),
        scale.num_hosts(),
        scale.cluster_size(),
        &mut rng,
    );
    let membership = ZipfGroups::new(scale.num_hosts(), num_groups)
        .with_min_size(2)
        .sample(&mut rng);

    let mut rows = Vec::new();
    for &mean_gap_ms in &[200.0f64, 100.0, 50.0, 20.0, 10.0] {
        let mut bus = OrderedPubSub::with_network(&membership, &setup, &mut rng);
        let publishers: Vec<PublisherSpec> = membership
            .nodes()
            .flat_map(|node| {
                membership
                    .groups_of(node)
                    .map(move |group| PublisherSpec {
                        node,
                        group,
                        arrivals: Arrivals::Poisson {
                            mean: SimTime::from_ms(mean_gap_ms),
                        },
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let ids = drive(&mut bus, &publishers, horizon, &mut rng).expect("valid workload");
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0, "sustained load must not deadlock");

        // A run that delivered nothing reports "-" cells, not a panic.
        let dash = || "-".to_string();
        let latency = metrics::mean_delivery_latency_ms(bus.all_deliveries());
        let buffering = metrics::mean_buffering_ms(bus.all_deliveries());
        let per_delivery_ms: Vec<f64> = bus
            .all_deliveries()
            .map(|r| (r.delivered - r.published).as_ms())
            .collect();
        let pct = |p: f64| {
            seqnet_obs::stats::try_percentile(&per_delivery_ms, p)
                .map(f3)
                .unwrap_or_else(dash)
        };
        let highwater = bus
            .receiver_buffer_highwater()
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        rows.push(vec![
            f3(1000.0 / mean_gap_ms),
            ids.len().to_string(),
            bus.all_deliveries().count().to_string(),
            latency.map(f3).unwrap_or_else(dash),
            pct(50.0),
            pct(95.0),
            pct(99.0),
            buffering.map(f3).unwrap_or_else(dash),
            highwater.to_string(),
        ]);
    }

    print_table(
        &format!(
            "Sustained load: ordering-buffer behavior ({} hosts, {num_groups} groups, {horizon} horizon)",
            scale.num_hosts()
        ),
        &[
            "msgs/s per publisher",
            "published",
            "delivered",
            "mean latency ms",
            "p50",
            "p95",
            "p99",
            "mean buffering ms",
            "max buffer depth",
        ],
        &rows,
    );
    let path = save_csv(
        "sustained_load",
        &[
            "rate_per_publisher",
            "published",
            "delivered",
            "latency_ms",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "buffering_ms",
            "max_buffer",
        ],
        &rows,
    );
    println!("\nTable written to {path}");
}
