//! Figure 6: sequencing-node stress (groups forwarded / total groups) as
//! the number of groups grows, for 128 subscriber nodes.
//!
//! Paper result: average stress falls as nodes are added, stabilizes
//! around 0.2, and rises slightly after ~30 groups when the node count
//! stops growing.

use seqnet_bench::experiments::{
    stress_values, stress_values_stamped, structural_occupancy, structural_zipf,
};
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_overlap::stats::{mean, percentile};

/// Overlap density of the dense companion series (see `fig5`).
const DENSE_OCCUPANCY: f64 = 0.15;

fn main() {
    let scale = ExperimentScale::from_env();
    let num_nodes = scale.num_hosts();
    let trials = scale.trials(100);
    let max_groups = if scale.paper { 64 } else { 16 };

    let mut rows = Vec::new();
    for groups in 2..=max_groups {
        let mut zipf_all = Vec::new();
        let mut dense_stamped = Vec::new();
        for t in 0..trials {
            let sample = structural_zipf(num_nodes, groups, 0xF1906 + (t * 1000 + groups) as u64);
            zipf_all.extend(stress_values(&sample));
            let dense = structural_occupancy(
                num_nodes,
                groups,
                DENSE_OCCUPANCY,
                0xF1916 + (t * 1000 + groups) as u64,
            );
            dense_stamped.extend(stress_values_stamped(&dense));
        }
        if zipf_all.is_empty() && dense_stamped.is_empty() {
            continue; // no overlaps at this group count in any trial
        }
        let cell = |v: &Vec<f64>, p: f64| -> String {
            if v.is_empty() {
                "-".to_string()
            } else {
                f3(percentile(v, p))
            }
        };
        rows.push(vec![
            groups.to_string(),
            if zipf_all.is_empty() { "-".into() } else { f3(mean(&zipf_all)) },
            cell(&zipf_all, 50.0),
            cell(&zipf_all, 90.0),
            cell(&zipf_all, 95.0),
            cell(&zipf_all, 99.0),
            cell(&zipf_all, 100.0),
            if dense_stamped.is_empty() { "-".into() } else { f3(mean(&dense_stamped)) },
            cell(&dense_stamped, 50.0),
            cell(&dense_stamped, 90.0),
            cell(&dense_stamped, 95.0),
            cell(&dense_stamped, 99.0),
            cell(&dense_stamped, 100.0),
        ]);
    }

    print_table(
        &format!("Figure 6: sequencing-node stress vs groups ({num_nodes} nodes, {trials} trials)"),
        &[
            "groups",
            "zipf mean",
            "p50",
            "p90",
            "p95",
            "p99",
            "max",
            "dense mean",
            "p50",
            "p90",
            "p95",
            "p99",
            "max",
        ],
        &rows,
    );
    let path = save_csv(
        "fig6_stress",
        &[
            "groups",
            "zipf_mean",
            "zipf_p50",
            "zipf_p90",
            "zipf_p95",
            "zipf_p99",
            "zipf_max",
            "dense_stamped_mean",
            "dense_stamped_p50",
            "dense_stamped_p90",
            "dense_stamped_p95",
            "dense_stamped_p99",
            "dense_stamped_max",
        ],
        &rows,
    );
    println!("\nSeries written to {path}");
    println!("(Dense series uses Bernoulli membership at occupancy {DENSE_OCCUPANCY} and");
    println!(" the stamped-only stress reading; see EXPERIMENTS.md.)");
}
