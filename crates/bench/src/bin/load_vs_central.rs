//! §1.2/§4.3 claim: a central sequencer processes every message in the
//! system, while no sequencing atom of the decentralized scheme orders
//! more messages than the most active receiver.

use seqnet_bench::experiments::load_comparison;
use seqnet_bench::output::{print_table, save_csv};
use seqnet_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    let configs: &[(usize, usize)] = if scale.paper {
        &[(32, 8), (64, 16), (128, 32), (128, 64), (256, 64)]
    } else {
        &[(16, 4), (24, 8)]
    };

    let mut rows = Vec::new();
    for &(nodes, groups) in configs {
        let (total, central, max_stamp, max_receiver, gm_root) =
            load_comparison(nodes, groups, 0xF1943);
        assert_eq!(central, total, "central sequencer sees everything");
        assert!(max_stamp <= max_receiver, "scalability bound violated");
        rows.push(vec![
            nodes.to_string(),
            groups.to_string(),
            total.to_string(),
            central.to_string(),
            gm_root.to_string(),
            max_stamp.to_string(),
            max_receiver.to_string(),
            format!("{:.1}x", central as f64 / max_stamp.max(1) as f64),
        ]);
    }

    print_table(
        "Sequencing load: central / Garcia-Molina root / busiest seqnet atom",
        &[
            "nodes",
            "groups",
            "messages",
            "central load",
            "G-M root load",
            "max atom load",
            "max receiver load",
            "central/atom",
        ],
        &rows,
    );
    let path = save_csv(
        "load_vs_central",
        &["nodes", "groups", "messages", "central", "gm_root", "max_atom", "max_receiver", "ratio"],
        &rows,
    );
    println!("\nTable written to {path}");
}
