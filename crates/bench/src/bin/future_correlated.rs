//! Paper §5 future work: "measure when group membership is (or can be)
//! geographically-correlated."
//!
//! Group members are drawn from a home attachment cluster with probability
//! `locality`; at locality 0 this is the paper's uniform workload. When
//! communities are geographically correlated, the sequencing chain anchors
//! inside the community and the ordering detour shrinks.

use seqnet_bench::experiments::run_stretch_with;
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_core::metrics;
use seqnet_membership::workload::CorrelatedGroups;
use seqnet_overlap::stats::{mean, percentile};

fn main() {
    let scale = ExperimentScale::from_env();
    let num_groups = if scale.paper { 32 } else { 6 };
    let trials = scale.trials(5);

    let mut rows = Vec::new();
    for &locality in &[0.0, 0.25, 0.5, 0.75, 0.95] {
        let mut values = Vec::new();
        for t in 0..trials {
            let bus = run_stretch_with(scale, 0xC0BE + t as u64, |rng| {
                CorrelatedGroups::new(
                    scale.num_hosts(),
                    num_groups,
                    scale.cluster_size(),
                    locality,
                )
                .sample(rng)
            });
            values.extend(
                metrics::stretch_by_destination(bus.all_deliveries())
                    .into_iter()
                    .map(|(_, s)| s),
            );
        }
        if values.is_empty() {
            continue;
        }
        rows.push(vec![
            f3(locality),
            f3(mean(&values)),
            f3(percentile(&values, 50.0)),
            f3(percentile(&values, 90.0)),
            f3(percentile(&values, 100.0)),
        ]);
    }

    print_table(
        &format!("Future work: latency stretch vs membership locality ({num_groups} groups)"),
        &["locality", "mean", "p50", "p90", "max"],
        &rows,
    );
    let path = save_csv(
        "future_correlated",
        &["locality", "mean", "p50", "p90", "max"],
        &rows,
    );
    println!("\nTable written to {path}");
}
