//! Figure 4: relative delay penalty (RDP) per sender–destination pair vs
//! the pair's direct unicast delay, for 128 subscribers in 64 groups.
//!
//! Paper result: the highest RDP values occur at the smallest unicast
//! delays — nearby pairs pay proportionally most for ordering.

use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_overlap::stats::mean;

fn main() {
    let scale = ExperimentScale::from_env();
    let groups = if scale.paper { 64 } else { 6 };
    let points = seqnet_bench::experiments::rdp_points(scale, groups, 0xF1904);

    // Scatter CSV.
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(unicast_ms, rdp)| vec![f3(*unicast_ms), f3(*rdp)])
        .collect();
    let path = save_csv("fig4_rdp", &["unicast_ms", "rdp"], &rows);

    // Binned summary demonstrating the paper's shape: RDP falls as the
    // unicast delay grows.
    let max_unicast = points.iter().map(|(u, _)| *u).fold(0.0f64, f64::max);
    let bins = 8usize;
    let mut table = Vec::new();
    for b in 0..bins {
        let lo = max_unicast * b as f64 / bins as f64;
        let hi = max_unicast * (b + 1) as f64 / bins as f64;
        let in_bin: Vec<f64> = points
            .iter()
            .filter(|(u, _)| *u >= lo && (*u < hi || b == bins - 1))
            .map(|(_, r)| *r)
            .collect();
        if in_bin.is_empty() {
            continue;
        }
        let max = in_bin.iter().copied().fold(f64::MIN, f64::max);
        table.push(vec![
            format!("{:.1}-{:.1}", lo, hi),
            in_bin.len().to_string(),
            f3(mean(&in_bin)),
            f3(max),
        ]);
    }
    print_table(
        &format!("Figure 4: RDP vs unicast delay ({groups} groups, {} pairs)", points.len()),
        &["unicast delay (ms)", "pairs", "mean RDP", "max RDP"],
        &table,
    );
    println!("\nScatter written to {path}");
}
