//! Figure 5: average number of (non-ingress-only) sequencing nodes as the
//! number of groups grows from 1 to 64, for 128 subscriber nodes; 100
//! trials with 10th/90th percentile error bars.
//!
//! Paper result: the count grows with the number of groups but flattens
//! after ~30 groups, because new overlaps share members with existing
//! overlaps and co-locate onto existing sequencing nodes.

use seqnet_bench::experiments::{sequencing_nodes, structural_occupancy, structural_zipf};
use seqnet_bench::output::{f3, print_table, save_csv};
use seqnet_bench::ExperimentScale;
use seqnet_overlap::stats::{mean, percentile};

/// Overlap density of the dense companion series. The paper's exact group
/// sampler is denser than a literal reading of its Zipf formula; 0.15
/// occupancy reproduces its flatten-after-30-groups shape.
const DENSE_OCCUPANCY: f64 = 0.15;

fn main() {
    let scale = ExperimentScale::from_env();
    let num_nodes = scale.num_hosts();
    let trials = scale.trials(100);
    let max_groups = if scale.paper { 64 } else { 16 };

    let mut rows = Vec::new();
    for groups in 1..=max_groups {
        let zipf: Vec<f64> = (0..trials)
            .map(|t| {
                let sample = structural_zipf(num_nodes, groups, 0xF1905 + (t * 1000 + groups) as u64);
                sequencing_nodes(&sample) as f64
            })
            .collect();
        let dense: Vec<f64> = (0..trials)
            .map(|t| {
                let sample = structural_occupancy(
                    num_nodes,
                    groups,
                    DENSE_OCCUPANCY,
                    0xF1915 + (t * 1000 + groups) as u64,
                );
                sequencing_nodes(&sample) as f64
            })
            .collect();
        rows.push(vec![
            groups.to_string(),
            f3(mean(&zipf)),
            f3(percentile(&zipf, 10.0)),
            f3(percentile(&zipf, 90.0)),
            f3(mean(&dense)),
            f3(percentile(&dense, 10.0)),
            f3(percentile(&dense, 90.0)),
        ]);
    }

    print_table(
        &format!("Figure 5: sequencing nodes vs groups ({num_nodes} nodes, {trials} trials)"),
        &[
            "groups",
            "zipf mean",
            "p10",
            "p90",
            "dense mean",
            "p10",
            "p90",
        ],
        &rows,
    );
    let path = save_csv(
        "fig5_sequencing_nodes",
        &[
            "groups",
            "zipf_mean",
            "zipf_p10",
            "zipf_p90",
            "dense_mean",
            "dense_p10",
            "dense_p90",
        ],
        &rows,
    );
    println!("\nSeries written to {path}");
}
