//! Threaded-deployment throughput: end-to-end messages/second through the
//! real sequencing-node/host threads and reliable links (no loss).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_runtime::{Cluster, ClusterConfig};
use std::hint::black_box;
use std::time::Duration;

const MESSAGES: u64 = 50;

fn membership() -> Membership {
    Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
        (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
        (GroupId(2), vec![NodeId(2), NodeId(3), NodeId(0)]),
    ])
}

fn bench_cluster(c: &mut Criterion) {
    let m = membership();
    let mut group = c.benchmark_group("runtime_cluster");
    group.throughput(Throughput::Elements(MESSAGES));
    group.sample_size(10);

    group.bench_function("publish_to_delivery", |b| {
        b.iter_batched(
            || Cluster::start(&m, ClusterConfig::default()),
            |mut cluster| {
                let mut expected = 0usize;
                for i in 0..MESSAGES {
                    let grp = GroupId((i % 3) as u32);
                    let sender = m.members(grp).next().unwrap();
                    cluster.publish(sender, grp, vec![]).unwrap();
                    expected += m.group_size(grp);
                }
                let out = cluster
                    .wait_for_deliveries(expected, Duration::from_secs(30))
                    .unwrap();
                cluster.shutdown();
                black_box(out.len())
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
