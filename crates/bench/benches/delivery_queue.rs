//! Receiver-side deliver-or-buffer decision cost: the paper claims the
//! decision is immediate; this measures how immediate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use seqnet_core::{DeliveryQueue, Message, MessageId, ProtocolState};
use seqnet_membership::workload::ZipfGroups;
use seqnet_membership::NodeId;
use seqnet_overlap::GraphBuilder;
use std::hint::black_box;

fn bench_offer(c: &mut Criterion) {
    let m = ZipfGroups::new(32, 8)
        .with_min_size(2)
        .sample(&mut StdRng::seed_from_u64(5));
    let graph = GraphBuilder::new().build(&m);

    // The busiest receiver.
    let receiver: NodeId = m
        .nodes()
        .max_by_key(|&n| m.groups_of(n).count())
        .expect("nodes exist");

    // Sequence 256 messages addressed to the receiver's groups.
    let mut state = ProtocolState::new(&graph);
    let groups: Vec<_> = m.groups_of(receiver).collect();
    let msgs: Vec<Message> = (0..256u64)
        .map(|i| {
            let g = groups[i as usize % groups.len()];
            let sender = m.members(g).next().expect("non-empty");
            let mut msg = Message::new(MessageId(i), sender, g, vec![]);
            state.sequence_fully(&graph, &mut msg);
            msg
        })
        .collect();

    let mut group = c.benchmark_group("delivery_queue");
    group.throughput(Throughput::Elements(msgs.len() as u64));

    group.bench_function("in_order_arrival", |b| {
        b.iter(|| {
            let mut q = DeliveryQueue::new(receiver, &m, &graph);
            let mut total = 0usize;
            for msg in &msgs {
                total += q.offer(msg.clone()).len();
            }
            black_box(total)
        })
    });

    for shuffle_window in [8usize, 64, 256] {
        // Shuffle within windows: bounded reordering like real networks.
        let mut shuffled = msgs.clone();
        let mut rng = StdRng::seed_from_u64(7);
        for chunk in shuffled.chunks_mut(shuffle_window) {
            chunk.shuffle(&mut rng);
        }
        group.bench_with_input(
            BenchmarkId::new("reordered_arrival", shuffle_window),
            &shuffled,
            |b, shuffled| {
                b.iter(|| {
                    let mut q = DeliveryQueue::new(receiver, &m, &graph);
                    let mut total = 0usize;
                    for msg in shuffled {
                        total += q.offer(msg.clone()).len();
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_offer);
criterion_main!(benches);
