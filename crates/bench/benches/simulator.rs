//! Substrate micro-benchmarks: discrete-event engine throughput, topology
//! generation, and shortest-path computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_sim::{SimTime, Simulator};
use seqnet_topology::{RouterId, TransitStubParams, WaxmanParams};
use std::hint::black_box;

fn bench_event_throughput(c: &mut Criterion) {
    const EVENTS: u64 = 10_000;
    let mut group = c.benchmark_group("des_engine");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("cascade_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0u64);
            fn tick(sim: &mut Simulator<u64>) {
                *sim.world_mut() += 1;
                if *sim.world() < EVENTS {
                    sim.schedule_in(SimTime::from_micros(1), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            black_box(sim.run_to_quiescence())
        })
    });
    group.bench_function("preloaded_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0u64);
            for i in 0..EVENTS {
                sim.schedule_at(SimTime::from_micros(i), |s| *s.world_mut() += 1);
            }
            black_box(sim.run_to_quiescence())
        })
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.sample_size(10);

    for (name, params) in [
        ("small_310", TransitStubParams::small()),
        ("medium_2020", TransitStubParams::medium()),
        ("paper_10000", TransitStubParams::paper()),
    ] {
        group.bench_with_input(BenchmarkId::new("transit_stub", name), &params, |b, p| {
            b.iter(|| black_box(p.generate(&mut StdRng::seed_from_u64(1))))
        });
    }
    group.bench_function("waxman_500", |b| {
        b.iter(|| black_box(WaxmanParams::new(500).generate(&mut StdRng::seed_from_u64(1))))
    });

    let topo = TransitStubParams::paper().generate(&mut StdRng::seed_from_u64(1));
    group.bench_function("dijkstra_10000_routers", |b| {
        b.iter(|| black_box(topo.graph.shortest_paths(RouterId(0))))
    });
    group.finish();
}

criterion_group!(benches, bench_event_throughput, bench_topology);
criterion_main!(benches);
