//! Sequencing-graph construction cost: batch builds across workload sizes,
//! incremental group addition vs full rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_membership::workload::ZipfGroups;
use seqnet_membership::{GroupId, NodeId};
use seqnet_overlap::GraphBuilder;
use std::hint::black_box;

fn bench_batch_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    for &(nodes, groups) in &[(64usize, 8usize), (128, 16), (128, 32), (128, 64)] {
        let m = ZipfGroups::new(nodes, groups).sample(&mut StdRng::seed_from_u64(1));
        group.bench_with_input(
            BenchmarkId::new("optimized", format!("{nodes}n_{groups}g")),
            &m,
            |b, m| b.iter(|| black_box(GraphBuilder::new().build(m))),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_only", format!("{nodes}n_{groups}g")),
            &m,
            |b, m| b.iter(|| black_box(GraphBuilder::new().without_optimization().build(m))),
        );
    }
    group.finish();
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_update");
    let nodes = 64u32;

    // Base state: 15 groups already present; measure adding the 16th.
    let base = ZipfGroups::new(nodes as usize, 15).sample(&mut StdRng::seed_from_u64(2));
    let new_members: Vec<NodeId> = (0..8).map(NodeId).collect();

    group.bench_function("incremental_add_group", |b| {
        b.iter_batched(
            || {
                let mut dyng = GraphBuilder::new().dynamic();
                for g in base.groups() {
                    let members: Vec<NodeId> = base.members(g).collect();
                    dyng.add_group(g, members);
                }
                dyng
            },
            |mut dyng| {
                dyng.add_group(GroupId(999), new_members.clone());
                black_box(dyng.graph())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("full_rebuild_after_add", |b| {
        b.iter_batched(
            || {
                let mut m = base.clone();
                for &n in &new_members {
                    m.subscribe(n, GroupId(999));
                }
                m
            },
            |m| black_box(GraphBuilder::new().build(&m)),
            criterion::BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_batch_build, bench_incremental_vs_rebuild);
criterion_main!(benches);
