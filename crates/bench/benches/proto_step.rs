//! Stepping cost of the sans-I/O protocol core: events in, commands out,
//! no transport. Both the simulator and the threaded runtime pay this per
//! frame, so events/second here bounds either driver's sequencing rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_core::proto::{Command, Event, Frame, NodeCore, Peer, ReceiverCore, Routing};
use seqnet_core::{Message, MessageId, ProtocolState};
use seqnet_membership::workload::ZipfGroups;
use seqnet_membership::Membership;
use seqnet_overlap::{GraphBuilder, SequencingGraph};
use std::hint::black_box;

/// One frame per (member, group) pair, addressed to the group's ingress
/// atom — the same publish pattern the integration tests use.
fn publish_frames(m: &Membership, graph: &SequencingGraph) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut next_id = 0u64;
    for node in m.nodes() {
        for group in m.groups_of(node) {
            let ingress = graph.ingress(group).expect("group has a path");
            frames.push(Frame {
                msg: Message::new(MessageId(next_id), node, group, Vec::new()),
                target_atom: Some(ingress),
            });
            next_id += 1;
        }
    }
    frames
}

/// Drives the publishes through one-atom-per-node cores until every frame
/// reaches an egress fan-out, counting host-bound sends. This is the full
/// ingress → sequencing → egress command loop with zero transport cost.
fn run_pipeline(
    m: &Membership,
    graph: &SequencingGraph,
    publishes: &[Frame],
    mut on_host_frame: impl FnMut(Peer, Frame),
) {
    let routing = Routing::solo(m, graph);
    let mut protocol = ProtocolState::new(graph);
    let mut cores: Vec<NodeCore> = (0..graph.num_atoms())
        .map(|i| NodeCore::new(i, false))
        .collect();
    let mut pending: Vec<(usize, Frame)> = publishes
        .iter()
        .map(|f| {
            let atom = f.target_atom.expect("publishes target an ingress atom");
            (atom.0 as usize, f.clone())
        })
        .collect();
    while let Some((node, frame)) = pending.pop() {
        let commands = cores[node].on_event(
            &routing,
            &mut protocol,
            Event::FrameArrived { frame },
        );
        for cmd in commands {
            match cmd {
                Command::Send {
                    to: Peer::Node(next),
                    frame,
                } => pending.push((next, frame)),
                Command::Send { to, frame } => on_host_frame(to, frame),
                other => unreachable!("immediate mode only sends: {other:?}"),
            }
        }
    }
}

fn bench_proto_step(c: &mut Criterion) {
    let m = ZipfGroups::new(24, 8)
        .with_min_size(2)
        .sample(&mut StdRng::seed_from_u64(7));
    let graph = GraphBuilder::new().build(&m);
    let publishes = publish_frames(&m, &graph);

    let mut group = c.benchmark_group("proto_step");
    group.throughput(Throughput::Elements(publishes.len() as u64));

    group.bench_function("node_pipeline", |b| {
        b.iter(|| {
            let mut fanned_out = 0u64;
            run_pipeline(&m, &graph, &publishes, |_, _| fanned_out += 1);
            black_box(fanned_out)
        })
    });

    // Receiver side: replay one busy host's egress frames through a fresh
    // ReceiverCore — the Definition 1 deliver-or-buffer decision per frame.
    let busy = m
        .nodes()
        .max_by_key(|&n| m.groups_of(n).count())
        .expect("membership is non-empty");
    let mut host_frames: Vec<Frame> = Vec::new();
    run_pipeline(&m, &graph, &publishes, |to, frame| {
        if to == Peer::Host(busy) {
            host_frames.push(frame);
        }
    });
    group.throughput(Throughput::Elements(host_frames.len() as u64));
    group.bench_function("receiver_offer", |b| {
        b.iter(|| {
            let mut receiver = ReceiverCore::new(busy, &m, &graph);
            let mut delivered = 0u64;
            for frame in host_frames.iter().cloned() {
                delivered += receiver
                    .on_event(Event::FrameArrived { frame })
                    .len() as u64;
            }
            black_box(delivered)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_proto_step);
criterion_main!(benches);
