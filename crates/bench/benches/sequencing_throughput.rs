//! End-to-end message throughput of the three ordering schemes on the
//! same workload: decentralized sequencing network, central sequencer,
//! vector-clock causal broadcast.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_baseline::{CausalBroadcast, CentralDelays, CentralSequencer};
use seqnet_core::OrderedPubSub;
use seqnet_membership::workload::ZipfGroups;
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_sim::SimTime;
use std::hint::black_box;

const MESSAGES: u64 = 200;

fn workload(m: &Membership) -> Vec<(NodeId, GroupId)> {
    let mut jobs = Vec::new();
    'outer: loop {
        for node in m.nodes() {
            for group in m.groups_of(node) {
                jobs.push((node, group));
                if jobs.len() as u64 >= MESSAGES {
                    break 'outer;
                }
            }
        }
    }
    jobs
}

fn bench_throughput(c: &mut Criterion) {
    let m = ZipfGroups::new(32, 8)
        .with_min_size(2)
        .sample(&mut StdRng::seed_from_u64(3));
    let jobs = workload(&m);

    let mut group = c.benchmark_group("ordering_throughput");
    group.throughput(Throughput::Elements(MESSAGES));

    group.bench_function("sequencing_network", |b| {
        b.iter(|| {
            let mut bus = OrderedPubSub::new(&m);
            for &(node, grp) in &jobs {
                bus.publish(node, grp, vec![]).unwrap();
            }
            black_box(bus.run_to_quiescence())
        })
    });

    group.bench_function("central_sequencer", |b| {
        b.iter(|| {
            let mut bus = CentralSequencer::new(&m, CentralDelays::Uniform(SimTime::from_ms(1.0)));
            for &(node, grp) in &jobs {
                bus.publish(node, grp, 0).unwrap();
            }
            black_box(bus.run_to_quiescence())
        })
    });

    group.bench_function("gm_propagation_tree", |b| {
        b.iter(|| {
            let mut tree =
                seqnet_baseline::PropagationTree::new(&m, SimTime::from_ms(1.0));
            for &(node, grp) in &jobs {
                tree.publish(node, grp).unwrap();
            }
            black_box(tree.run_to_quiescence())
        })
    });

    group.bench_function("token_ring", |b| {
        b.iter(|| {
            let mut ring = seqnet_baseline::TokenRing::new(
                &m,
                SimTime::from_ms(1.0),
                SimTime::from_ms(2.0),
            );
            for &(node, grp) in &jobs {
                ring.publish(node, grp, []).unwrap();
            }
            black_box(ring.run_to_quiescence())
        })
    });

    group.bench_function("vector_clock_broadcast", |b| {
        // The causal-broadcast baseline has no network model; measure the
        // pure protocol work: broadcast + delivery at every node. Clock
        // width must cover the highest node id — ids can be sparse when
        // some hosts hold no subscriptions.
        let nodes: Vec<NodeId> = m.nodes().collect();
        let n = nodes.iter().map(|x| x.index()).max().unwrap_or(0) + 1;
        b.iter(|| {
            let mut states: Vec<CausalBroadcast> = nodes
                .iter()
                .map(|&node| CausalBroadcast::new(node, n))
                .collect();
            let mut delivered = 0u64;
            for (i, &(node, _)) in jobs.iter().enumerate() {
                let sender_idx = nodes.iter().position(|&x| x == node).unwrap();
                let msg = states[sender_idx].broadcast(i as u64);
                for (j, state) in states.iter_mut().enumerate() {
                    if j != sender_idx {
                        delivered += state.receive(msg.clone()).len() as u64;
                    }
                }
            }
            black_box(delivered)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
