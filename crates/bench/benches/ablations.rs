//! Cost of the placement machinery itself: §3.4 co-location and machine
//! mapping vs their trivial alternatives. (The *quality* ablation — what
//! these heuristics buy in latency — is the `ablation_quality` binary.)

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_membership::workload::ZipfGroups;
use seqnet_overlap::{place, Colocation, GraphBuilder, Placement};
use seqnet_topology::{ClusteredAttachment, HostId, TransitStubParams};
use std::hint::black_box;

fn bench_placement_machinery(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let topo = TransitStubParams::medium().generate(&mut rng);
    let hosts = ClusteredAttachment::new(64, 8).attach(&topo, &mut rng);
    let m = ZipfGroups::new(64, 32).sample(&mut rng);
    let graph = GraphBuilder::new().build(&m);
    let anchors = place::member_anchors(&m, |n| hosts.router_of(HostId(n.0)));

    let mut group = c.benchmark_group("placement");

    group.bench_function("colocation_two_step", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(Colocation::compute(&graph, &mut rng))
        })
    });
    group.bench_function("colocation_scattered", |b| {
        b.iter(|| black_box(Colocation::scattered(&graph)))
    });

    let coloc = Colocation::compute(&graph, &mut rng);
    group.bench_function("machine_mapping_heuristic", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(Placement::heuristic(&graph, &coloc, &topo.graph, &anchors, &mut rng))
        })
    });
    group.bench_function("machine_mapping_random", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(Placement::random(&coloc, &topo.graph, &mut rng))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_placement_machinery);
criterion_main!(benches);
