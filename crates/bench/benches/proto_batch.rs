//! Batched stepping cost of the sans-I/O protocol core, the twin of
//! `proto_step`: the same publish pipeline and receiver replay, but driven
//! through [`NodeCore::on_events`] / [`ReceiverCore::offer_batch`] with one
//! reused [`CommandBuf`] per driver loop. Comparing the two suites'
//! per-element times measures exactly what the batch fast path buys —
//! identical commands (PROTOCOL.md §12), minus the per-event `Vec`
//! allocations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet_core::proto::{Command, CommandBuf, Event, Frame, NodeCore, Peer, ReceiverCore, Routing};
use seqnet_core::{Message, MessageId, ProtocolState};
use seqnet_membership::workload::ZipfGroups;
use seqnet_membership::Membership;
use seqnet_overlap::{GraphBuilder, SequencingGraph};
use std::hint::black_box;

/// One frame per (member, group) pair, addressed to the group's ingress
/// atom — identical to `proto_step`'s workload so the suites compare.
fn publish_frames(m: &Membership, graph: &SequencingGraph) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut next_id = 0u64;
    for node in m.nodes() {
        for group in m.groups_of(node) {
            let ingress = graph.ingress(group).expect("group has a path");
            frames.push(Frame {
                msg: Message::new(MessageId(next_id), node, group, Vec::new()),
                target_atom: Some(ingress),
            });
            next_id += 1;
        }
    }
    frames
}

/// The `proto_step` pipeline rewritten batch-first: frames destined for
/// the same core are grouped and fed through one `on_events` call, with
/// one `CommandBuf` reused across every call in the run.
fn run_pipeline_batched(
    m: &Membership,
    graph: &SequencingGraph,
    publishes: &[Frame],
    mut on_host_frame: impl FnMut(Peer, Frame),
) {
    let routing = Routing::solo(m, graph);
    let mut protocol = ProtocolState::new(graph);
    let mut cores: Vec<NodeCore> = (0..graph.num_atoms())
        .map(|i| NodeCore::new(i, false))
        .collect();
    let mut buf = CommandBuf::new();
    // Per-core input queues: each round drains one core's whole backlog
    // as a single batch, mirroring a channel pump.
    let mut queues: Vec<Vec<Frame>> = vec![Vec::new(); graph.num_atoms()];
    for f in publishes {
        let atom = f.target_atom.expect("publishes target an ingress atom");
        queues[atom.0 as usize].push(f.clone());
    }
    loop {
        let Some(node) = (0..queues.len()).find(|&n| !queues[n].is_empty()) else {
            break;
        };
        let batch: Vec<Frame> = std::mem::take(&mut queues[node]);
        buf.clear();
        cores[node].on_events(
            &routing,
            &mut protocol,
            batch.into_iter().map(|frame| Event::FrameArrived { frame }),
            &mut buf,
        );
        for cmd in buf.drain() {
            match cmd {
                Command::Send {
                    to: Peer::Node(next),
                    frame,
                } => queues[next].push(frame),
                Command::Send { to, frame } => on_host_frame(to, frame),
                other => unreachable!("immediate mode only sends: {other:?}"),
            }
        }
    }
}

fn bench_proto_batch(c: &mut Criterion) {
    let m = ZipfGroups::new(24, 8)
        .with_min_size(2)
        .sample(&mut StdRng::seed_from_u64(7));
    let graph = GraphBuilder::new().build(&m);
    let publishes = publish_frames(&m, &graph);

    let mut group = c.benchmark_group("proto_batch");
    group.throughput(Throughput::Elements(publishes.len() as u64));

    group.bench_function("node_pipeline", |b| {
        b.iter(|| {
            let mut fanned_out = 0u64;
            run_pipeline_batched(&m, &graph, &publishes, |_, _| fanned_out += 1);
            black_box(fanned_out)
        })
    });

    // Receiver side: the busiest host's egress frames through one
    // `offer_batch` call per replay, reusing the buffer across iterations.
    let busy = m
        .nodes()
        .max_by_key(|&n| m.groups_of(n).count())
        .expect("membership is non-empty");
    let mut host_frames: Vec<Frame> = Vec::new();
    run_pipeline_batched(&m, &graph, &publishes, |to, frame| {
        if to == Peer::Host(busy) {
            host_frames.push(frame);
        }
    });
    group.throughput(Throughput::Elements(host_frames.len() as u64));
    group.bench_function("receiver_offer", |b| {
        let mut buf = CommandBuf::new();
        b.iter(|| {
            let mut receiver = ReceiverCore::new(busy, &m, &graph);
            buf.clear();
            receiver.offer_batch(
                host_frames
                    .iter()
                    .cloned()
                    .map(|frame| Event::FrameArrived { frame }),
                &mut buf,
            );
            black_box(buf.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_proto_batch);
criterion_main!(benches);
