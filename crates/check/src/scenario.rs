//! Named model-checking configurations: a membership topology, a workload
//! of publishes (optionally causally chained), a fault plan, and the node
//! operating mode.
//!
//! A [`Scenario`] is pure data; [`crate::model::World::new`] compiles it
//! into an explorable initial state. The named constructors below form the
//! checked configuration matrix — small enough for bounded-exhaustive
//! exploration, chosen to cover the protocol's interesting shapes: a
//! single double overlap, the paper's Figure 2 "case 3" triangle, a
//! two-atom chain with a transit hop, and a causal publish chain. Each has
//! a [`Scenario::crash_variant`] injecting a crash/restart window through
//! [`FaultPlan`].

use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_sim::{FaultPlan, SimTime};

/// One message the workload publishes: `sender` publishes to `group`,
/// optionally only after having *delivered* publish number `after` locally
/// (a causal trigger: the sender reacted to a message it received).
///
/// The publish's [`crate::model::World`]-assigned message id equals its
/// index in [`Scenario::publishes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publish {
    /// The publishing node (also the causal observer for `after`).
    pub sender: NodeId,
    /// The destination group.
    pub group: GroupId,
    /// If `Some(j)`, this publish is enabled only once `sender` has
    /// delivered publish `j` — requires `sender` to subscribe to
    /// publish `j`'s group.
    pub after: Option<usize>,
}

impl Publish {
    /// An unconditioned publish.
    pub fn new(sender: NodeId, group: GroupId) -> Self {
        Publish {
            sender,
            group,
            after: None,
        }
    }

    /// A publish causally triggered by the local delivery of publish
    /// `after`.
    pub fn after(sender: NodeId, group: GroupId, after: usize) -> Self {
        Publish {
            sender,
            group,
            after: Some(after),
        }
    }
}

/// One membership change of a scenario's online reconfiguration
/// (PROTOCOL.md §14). All ops of [`Scenario::reconfig`] apply as *one*
/// configuration change: the checker fires a single `Reconfigure`
/// transition, parks publishes while the epoch handoff is pending, and
/// advances the epoch once the old configuration has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigOp {
    /// `node` subscribes to `group` in the next configuration.
    Join(NodeId, GroupId),
    /// `node` unsubscribes from `group` in the next configuration.
    Leave(NodeId, GroupId),
}

/// A complete model-checking configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (CLI selector, log label).
    pub name: String,
    /// Who subscribes to what.
    pub membership: Membership,
    /// The workload, in message-id order.
    pub publishes: Vec<Publish>,
    /// Crash/restart windows to inject. The checker uses only the crash
    /// windows (and only their *order*, not their times): partitions and
    /// loss are delay phenomena that schedule exploration already
    /// subsumes, because the checker may defer any channel arbitrarily.
    pub plan: FaultPlan,
    /// Run node cores in group-commit mode (staged outputs released by
    /// snapshots) instead of direct sends.
    pub group_commit: bool,
    /// Test-only: sabotage the group-commit discipline so the
    /// staged-output oracle has something to catch. See
    /// `NodeCore::sabotage_skip_staging`.
    pub sabotage_unstaged: bool,
    /// An online reconfiguration the checker may fire at any point of the
    /// schedule (empty: the configuration is static). Non-empty adds a
    /// `Reconfigure` and an `EpochAdvance` transition to the explored
    /// state space.
    pub reconfig: Vec<ReconfigOp>,
}

impl Scenario {
    /// A fault-free, direct-send scenario.
    ///
    /// # Panics
    ///
    /// Panics if a causal publish's sender does not subscribe to the
    /// trigger's group, or an `after` index is not an earlier publish —
    /// such a workload could deadlock the exploration instead of failing
    /// an oracle.
    pub fn new(
        name: impl Into<String>,
        membership: Membership,
        publishes: Vec<Publish>,
    ) -> Self {
        for (i, p) in publishes.iter().enumerate() {
            if let Some(j) = p.after {
                assert!(j < i, "publish {i} triggered by later publish {j}");
                let trigger_group = publishes[j].group;
                assert!(
                    membership.is_member(p.sender, trigger_group),
                    "publish {i}: {} cannot observe {} (not a member)",
                    p.sender,
                    trigger_group,
                );
            }
        }
        Scenario {
            name: name.into(),
            membership,
            publishes,
            plan: FaultPlan::new(),
            group_commit: false,
            sabotage_unstaged: false,
            reconfig: Vec::new(),
        }
    }

    /// Adds an online reconfiguration to the explored schedule (the ops
    /// apply as one configuration change).
    pub fn with_reconfig(mut self, ops: Vec<ReconfigOp>) -> Self {
        self.reconfig = ops;
        self
    }

    /// Replaces the fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Switches node cores to group-commit (staged-output) mode.
    pub fn with_group_commit(mut self) -> Self {
        self.name = format!("{}+gc", self.name);
        self.group_commit = true;
        self
    }

    /// Group-commit mode with the staging discipline deliberately broken
    /// (outputs escape before any snapshot). Used to prove the
    /// staged-output oracle fires; see ISSUE acceptance criteria.
    pub fn with_sabotaged_staging(mut self) -> Self {
        self.name = format!("{}+sabotage", self.name);
        self.group_commit = true;
        self.sabotage_unstaged = true;
        self
    }

    /// The same scenario with one crash/restart window on sequencing node
    /// (= atom) 0. Window times only order the fault queue — the checker
    /// decides *when* the crash fires relative to every other event.
    pub fn crash_variant(mut self) -> Self {
        self.name = format!("{}+crash", self.name);
        self.plan = self
            .plan
            .crash(0, SimTime::from_micros(1), SimTime::from_micros(2));
        self
    }
}

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

/// Two groups sharing a double overlap (`g0 = {0,1,2}`, `g1 = {1,2,3}`),
/// three publishes from both sides of the overlap. One overlap atom, so
/// one sequencing node — the ISSUE's acceptance configuration: 2 groups,
/// 1 double overlap, 2+ common receivers.
pub fn two_group_overlap() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    Scenario::new(
        "two-group-overlap",
        m,
        vec![
            Publish::new(n(0), g(0)),
            Publish::new(n(3), g(1)),
            Publish::new(n(1), g(0)),
        ],
    )
}

/// The paper's Figure 2 triangle (three pairwise-overlapping groups),
/// generalizing `tests/model_check_case3.rs`: concurrent publishes whose
/// pairwise orderings must still compose consistently at every common
/// subscriber ("case 3" of Theorem 1's proof).
pub fn case3_pairwise() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(3)]),
        (g(1), vec![n(0), n(1), n(2)]),
        (g(2), vec![n(1), n(2), n(3)]),
    ]);
    Scenario::new(
        "case3-pairwise",
        m,
        vec![
            Publish::new(n(0), g(0)),
            Publish::new(n(0), g(1)),
            Publish::new(n(3), g(2)),
        ],
    )
}

/// Two disjoint-member double overlaps chained by one group
/// (`g0 = {0,1,10,11}` spans both): g0's path crosses two sequencing
/// atoms, exercising transit forwarding and node-to-node frames.
pub fn disjoint_chain() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(10), n(11)]),
        (g(1), vec![n(0), n(1), n(2)]),
        (g(2), vec![n(10), n(11), n(12)]),
    ]);
    Scenario::new(
        "disjoint-chain",
        m,
        vec![
            Publish::new(n(0), g(0)),
            Publish::new(n(2), g(1)),
            Publish::new(n(12), g(2)),
        ],
    )
}

/// A causal chain across the overlap: node 1 subscribes to both groups,
/// receives publish 0 on g0, and reacts by publishing to g1. Every
/// subscriber of both groups must observe cause before effect — the
/// paper's causality-for-self-subscribing-publishers guarantee.
pub fn causal_reaction() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    Scenario::new(
        "causal-reaction",
        m,
        vec![
            Publish::new(n(0), g(0)),
            Publish::after(n(1), g(1), 0),
        ],
    )
}

/// The two-group-overlap topology with node 4 joining g1 while three
/// publishes are in flight: the checker explores every placement of the
/// `Reconfigure` and `EpochAdvance` transitions relative to the workload,
/// so publishes land on both sides of the epoch boundary and park during
/// the handoff (PROTOCOL.md §14).
pub fn join_during_flight() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    Scenario::new(
        "join-during-flight",
        m,
        vec![
            Publish::new(n(0), g(0)),
            Publish::new(n(3), g(1)),
            Publish::new(n(1), g(0)),
        ],
    )
    .with_reconfig(vec![ReconfigOp::Join(n(4), g(1))])
}

/// Node 2 leaves g1 under live traffic. The {1,2} double overlap shrinks
/// to {1}, so the old overlap atom leaves the sequencing graph and is
/// retired *lazily* — the next configuration still contains it as a
/// transit hop while new atoms sit beside it (`DynamicGraph` semantics).
pub fn leave_with_parked_atoms() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    Scenario::new(
        "leave-with-parked-atoms",
        m,
        vec![
            Publish::new(n(0), g(0)),
            Publish::new(n(3), g(1)),
        ],
    )
    .with_reconfig(vec![ReconfigOp::Leave(n(2), g(1))])
}

/// The join scenario with a crash window on sequencing node 0: the crash
/// and restart interleave freely with the handoff, so the exploration
/// covers "node crashes while the epoch is draining" — the epoch handoff
/// must stall until the restarted node replays its parked frames, and no
/// message may cross the boundary out of order.
pub fn crash_during_handoff() -> Scenario {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    Scenario::new(
        "crash-during-handoff",
        m,
        vec![Publish::new(n(0), g(0)), Publish::new(n(3), g(1))],
    )
    .with_reconfig(vec![ReconfigOp::Join(n(4), g(1))])
    .with_plan(FaultPlan::new().crash(
        0,
        SimTime::from_micros(1),
        SimTime::from_micros(2),
    ))
}

/// The bounded configuration matrix exercised by `cargo test` and CI:
/// every base topology fault-free and with a crash window, the
/// group-commit and causal variants, plus the online-reconfiguration
/// scenarios (join, leave with lazy atom retirement, crash during the
/// epoch handoff).
pub fn registry() -> Vec<Scenario> {
    vec![
        two_group_overlap(),
        two_group_overlap().crash_variant(),
        two_group_overlap().with_group_commit(),
        two_group_overlap().with_group_commit().crash_variant(),
        case3_pairwise(),
        case3_pairwise().crash_variant(),
        disjoint_chain(),
        disjoint_chain().crash_variant(),
        causal_reaction(),
        causal_reaction().crash_variant(),
        join_during_flight(),
        leave_with_parked_atoms(),
        crash_during_handoff(),
    ]
}

/// Looks a scenario up by [`Scenario::name`]. Besides the registry, the
/// sabotaged variant resolves too — excluded from the clean matrix, but
/// addressable so the CLI can demonstrate and replay the counterexample
/// pipeline (`seqnet-check --scenario two-group-overlap+sabotage`).
pub fn by_name(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name).or_else(|| {
        (name == "two-group-overlap+sabotage")
            .then(|| two_group_overlap().with_sabotaged_staging())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet_overlap::GraphBuilder;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let all = registry();
        for (i, s) in all.iter().enumerate() {
            assert!(
                all.iter().skip(i + 1).all(|t| t.name != s.name),
                "duplicate scenario name {}",
                s.name
            );
            assert_eq!(by_name(&s.name).map(|t| t.name), Some(s.name.clone()));
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn registry_covers_three_topologies_faultless_and_faulty() {
        let all = registry();
        // "+crash"-suffixed names are faulty variants of a fault-free base;
        // the reconfiguration scenarios stand alone and are checked below.
        let bases: std::collections::BTreeSet<String> = all
            .iter()
            .filter(|s| s.name.ends_with("+crash"))
            .map(|s| s.name.trim_end_matches("+crash").to_string())
            .collect();
        assert!(bases.len() >= 3, "at least three base topologies");
        for base in &bases {
            assert!(
                all.iter().any(|s| &s.name == base && s.plan.is_empty()),
                "{base} has a fault-free variant"
            );
            assert!(
                all.iter()
                    .any(|s| s.name == format!("{base}+crash") && !s.plan.is_empty()),
                "{base} has a faulty variant"
            );
        }
    }

    #[test]
    fn registry_covers_the_reconfiguration_matrix() {
        let all = registry();
        let by = |name: &str| {
            all.iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing from registry"))
        };
        let join = by("join-during-flight");
        assert!(matches!(join.reconfig[..], [ReconfigOp::Join(..)]));
        assert!(join.plan.is_empty());
        let leave = by("leave-with-parked-atoms");
        assert!(matches!(leave.reconfig[..], [ReconfigOp::Leave(..)]));
        let crashy = by("crash-during-handoff");
        assert!(!crashy.reconfig.is_empty() && !crashy.plan.is_empty());
        // Everything else stays a static configuration.
        assert_eq!(
            all.iter().filter(|s| !s.reconfig.is_empty()).count(),
            3,
            "exactly the three churn scenarios reconfigure"
        );
    }

    #[test]
    fn scenario_graphs_validate() {
        for s in registry() {
            let graph = GraphBuilder::new().build(&s.membership);
            graph
                .validate_against(&s.membership)
                .unwrap_or_else(|e| panic!("{}: invalid graph: {e}", s.name));
        }
    }

    #[test]
    fn disjoint_chain_spans_two_atoms() {
        let s = disjoint_chain();
        let graph = GraphBuilder::new().build(&s.membership);
        assert_eq!(graph.num_atoms(), 2, "two disjoint-member overlap atoms");
        assert_eq!(
            graph.path(GroupId(0)).map(|p| p.len()),
            Some(2),
            "g0 crosses both atoms"
        );
    }

    #[test]
    #[should_panic(expected = "cannot observe")]
    fn causal_trigger_requires_subscription() {
        let m = Membership::from_groups([
            (g(0), vec![n(0), n(1)]),
            (g(1), vec![n(2), n(3)]),
        ]);
        // n(2) does not subscribe to g0 and so can never observe publish 0.
        let _ = Scenario::new(
            "bad",
            m,
            vec![Publish::new(n(0), g(0)), Publish::after(n(2), g(1), 0)],
        );
    }
}
