//! Seeded random-walk exploration with fault randomization.
//!
//! Exhaustive search covers small configurations completely; for anything
//! larger the checker falls back to many independent random walks. Each
//! walk draws its decisions from a [`splitmix64`] stream seeded by
//! `mix(base_seed, walk_index)`, optionally replacing the scenario's fault
//! plan with a [`FaultPlan::randomized`] drawn from the same per-walk seed
//! — so a failing walk is fully reproducible from its seed alone, and the
//! recorded decision list makes it replayable even after shrinking.

use seqnet_core::proto::testing::splitmix64;
use seqnet_sim::{FaultPlan, ScheduleTrace, SimTime};

use crate::explore::{Counterexample, ExploreStats, Outcome};
use crate::invariants::Invariant;
use crate::model::World;
use crate::scenario::Scenario;

/// Bounds for a batch of random walks.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of independent walks.
    pub walks: usize,
    /// Step cap per walk (walks normally end at a terminal state first).
    pub max_steps: usize,
    /// Replace the scenario's fault plan with a randomized one per walk
    /// (crash windows drawn from the walk seed).
    pub randomize_faults: bool,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            walks: 64,
            max_steps: 512,
            randomize_faults: false,
        }
    }
}

/// The scenario a given walk actually runs: the base scenario, with its
/// fault plan swapped for a seed-derived one when fault randomization is
/// on. Exposed so counterexample replay can rebuild the identical world
/// from `(base scenario, walk seed)`.
pub fn scenario_for_walk(base: &Scenario, walk_seed: u64, config: &RandomConfig) -> Scenario {
    if !config.randomize_faults {
        return base.clone();
    }
    let world = World::new(base);
    let nodes = world.graph().num_atoms();
    // The horizon only orders the generated windows; the checker ignores
    // the absolute times.
    let plan = FaultPlan::randomized(walk_seed, nodes, SimTime::from_micros(1_000));
    base.clone().with_plan(crashes_only(&plan))
}

/// Strips a plan to its crash windows — the only fault class the checker
/// models explicitly (delay-like faults are subsumed by schedule choice).
fn crashes_only(plan: &FaultPlan) -> FaultPlan {
    let mut out = FaultPlan::new();
    for w in plan.crash_windows() {
        out = out.crash(w.node, w.down_at, w.up_at);
    }
    out
}

/// The per-walk seed: a deterministic mix of the batch seed and the walk
/// index.
pub fn walk_seed(base_seed: u64, walk: usize) -> u64 {
    let mut state = base_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(walk as u64 + 1);
    splitmix64(&mut state)
}

/// Runs `config.walks` random walks of `scenario` against `oracles`.
/// Returns the first failing walk as a counterexample whose trace records
/// the walk seed and the *resolved* decision indices actually taken.
pub fn random_walks(
    scenario: &Scenario,
    oracles: &[Box<dyn Invariant>],
    base_seed: u64,
    config: &RandomConfig,
) -> Outcome {
    let mut stats = ExploreStats::default();
    for walk in 0..config.walks {
        let seed = walk_seed(base_seed, walk);
        let walk_scenario = scenario_for_walk(scenario, seed, config);
        let world = World::new(&walk_scenario);
        for oracle in oracles {
            if let Err(violation) = oracle.check_initial(&world) {
                return Outcome::Fail(Counterexample {
                    trace: ScheduleTrace::new(seed),
                    violation,
                });
            }
        }
        if let Err(cex) = one_walk(world, oracles, seed, config.max_steps, &mut stats) {
            return Outcome::Fail(cex);
        }
    }
    Outcome::Pass(stats)
}

fn one_walk(
    mut world: World,
    oracles: &[Box<dyn Invariant>],
    seed: u64,
    max_steps: usize,
    stats: &mut ExploreStats,
) -> Result<(), Counterexample> {
    let mut rng_state = seed;
    let mut decisions = Vec::new();
    for step in 0..max_steps {
        let enabled = world.enabled();
        if enabled.is_empty() {
            stats.terminals += 1;
            for oracle in oracles {
                if let Err(violation) = oracle.check_terminal(&world) {
                    return Err(Counterexample {
                        trace: ScheduleTrace { seed, decisions },
                        violation,
                    });
                }
            }
            stats.max_depth_seen = stats.max_depth_seen.max(step);
            return Ok(());
        }
        let index = (splitmix64(&mut rng_state) % enabled.len() as u64) as u32;
        for oracle in oracles {
            if let Err(violation) = oracle.check_edge(&world, enabled[index as usize]) {
                decisions.push(index);
                return Err(Counterexample {
                    trace: ScheduleTrace { seed, decisions },
                    violation,
                });
            }
        }
        let record = world.step(enabled[index as usize]);
        decisions.push(index);
        stats.transitions += 1;
        stats.states += 1;
        for oracle in oracles {
            if let Err(violation) = oracle.check_step(&world, &record) {
                return Err(Counterexample {
                    trace: ScheduleTrace { seed, decisions },
                    violation,
                });
            }
        }
    }
    stats.truncated = true;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::default_oracles;
    use crate::scenario;

    #[test]
    fn walks_are_reproducible_per_seed() {
        assert_eq!(walk_seed(7, 3), walk_seed(7, 3));
        assert_ne!(walk_seed(7, 3), walk_seed(7, 4));
        assert_ne!(walk_seed(7, 3), walk_seed(8, 3));
    }

    #[test]
    fn honest_scenarios_survive_random_walks() {
        let cfg = RandomConfig {
            walks: 16,
            max_steps: 512,
            randomize_faults: false,
        };
        for sc in [scenario::two_group_overlap(), scenario::causal_reaction()] {
            let outcome = random_walks(&sc, &default_oracles(), 42, &cfg);
            match outcome {
                Outcome::Pass(stats) => {
                    assert_eq!(stats.terminals, 16, "{}: every walk terminated", sc.name);
                    assert!(!stats.truncated);
                }
                Outcome::Fail(cex) => panic!("{}: {} ({})", sc.name, cex.violation, cex.trace),
            }
        }
    }

    #[test]
    fn randomized_faults_inject_crashes_and_still_pass() {
        let cfg = RandomConfig {
            walks: 12,
            max_steps: 1024,
            randomize_faults: true,
        };
        let sc = scenario::disjoint_chain();
        // At least one walk seed must actually schedule a crash.
        let some_crash = (0..cfg.walks).any(|w| {
            !scenario_for_walk(&sc, walk_seed(5, w), &cfg)
                .plan
                .crash_windows()
                .is_empty()
        });
        assert!(some_crash, "fault randomization produces crash windows");
        let outcome = random_walks(&sc, &default_oracles(), 5, &cfg);
        assert!(
            outcome.counterexample().is_none(),
            "honest protocol survives injected crashes"
        );
    }

    #[test]
    fn sabotage_is_caught_by_random_walks() {
        let cfg = RandomConfig {
            walks: 32,
            max_steps: 512,
            randomize_faults: false,
        };
        let sc = scenario::two_group_overlap().with_sabotaged_staging();
        let outcome = random_walks(&sc, &default_oracles(), 1, &cfg);
        let cex = outcome.counterexample().expect("sabotage caught");
        assert_eq!(cex.violation.invariant, "staged-output");
        assert!(!cex.trace.is_empty());
    }
}
