//! The explorable world: protocol cores plus a FIFO-channel network model,
//! with every pending event exposed as a [`Transition`] the checker picks.
//!
//! The model deliberately contains **no clock**. Anything the simulator
//! expresses as delay — slow links, partitions healing, loss forcing
//! retransmission — appears here as the checker's freedom to defer a
//! channel's head frame arbitrarily long while firing everything else.
//! Schedule exploration therefore subsumes the timing-fault portion of a
//! [`seqnet_sim::FaultPlan`]; only its crash windows carry over, as
//! explicit crash/restart transitions whose *order* (not times) the
//! checker controls.
//!
//! Determinism contract: [`World::enabled`] returns transitions in a
//! deterministic sorted order, so a decision index (position in that list)
//! plus the scenario fully determines the successor state. That is what
//! makes a [`seqnet_sim::ScheduleTrace`] replayable.

use seqnet_core::proto::trace::{Actor, EventKind, NullSink, TraceEvent, TraceSink};
use seqnet_core::proto::{
    Command, CommandBuf, Digest, Event, Frame, NodeCore, Peer, ProtocolState, ReceiverCore, Routing,
};
use seqnet_core::{Message, MessageId};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_overlap::{GraphBuilder, SequencingGraph};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use crate::scenario::{ReconfigOp, Scenario};

/// A crash or restart pending for one sequencing node, in plan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The node goes down (frames park until restart).
    Crash,
    /// The node comes back and replays parked frames.
    Restart,
}

/// One schedulable step of the world. [`World::enabled`] enumerates these
/// in a deterministic order; the checker picks one by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Transition {
    /// Publish workload message `i` (its id becomes `MessageId(i)`).
    Publish(usize),
    /// Deliver the head frame of the FIFO channel `src -> dst`.
    Deliver(Peer, Peer),
    /// Fire the next pending fault action of a sequencing node.
    Fault(usize, FaultKind),
    /// Take a snapshot at a group-commit node with staged output, which
    /// flushes the staged frames and advances ack floors.
    Snapshot(usize),
    /// Begin the scenario's online reconfiguration (PROTOCOL.md §14):
    /// from here on, publishes park for the next epoch.
    Reconfigure,
    /// Complete the pending epoch handoff. Enabled only once the old
    /// epoch has fully drained — no frame in flight, no staged output,
    /// no crashed node, no message buffered at a receiver.
    EpochAdvance,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transition::Publish(i) => write!(f, "publish m{i}"),
            Transition::Deliver(src, dst) => write!(f, "deliver {src}->{dst}"),
            Transition::Fault(n, FaultKind::Crash) => write!(f, "crash node{n}"),
            Transition::Fault(n, FaultKind::Restart) => write!(f, "restart node{n}"),
            Transition::Snapshot(n) => write!(f, "snapshot node{n}"),
            Transition::Reconfigure => write!(f, "reconfigure"),
            Transition::EpochAdvance => write!(f, "advance-epoch"),
        }
    }
}

/// What one [`World::step`] did, handed to the per-step invariant oracles.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The transition that was executed.
    pub transition: Transition,
    /// Group-commit violations: raw sends a node emitted while the
    /// staged-output discipline was in force (node index, message id).
    pub unstaged_sends: Vec<(usize, MessageId)>,
    /// Messages delivered to applications by this step, in delivery
    /// order, each tagged with the configuration epoch it was sequenced
    /// under.
    pub delivered_now: Vec<(NodeId, MessageId, GroupId, u64)>,
}

/// The configuration an online reconfiguration activates: the epoch-N+1
/// membership and sequencing graph, precompiled so exploration clones
/// stay cheap. Built through [`seqnet_overlap::DynamicGraph`], so atom
/// ids are stable across the boundary and atoms leaving the overlap
/// structure are retired lazily (still present as transit hops).
#[derive(Debug)]
struct NextConfig {
    membership: Membership,
    graph: SequencingGraph,
}

/// The immutable part of a compiled scenario, shared (via [`Rc`]) by every
/// clone of a [`World`] so DFS branching never copies the graph.
#[derive(Debug)]
struct Compiled {
    scenario: Scenario,
    graph: SequencingGraph,
    next: Option<NextConfig>,
}

impl Compiled {
    /// The membership and graph in force: the next configuration once the
    /// handoff has completed, the initial one before.
    fn config(&self, advanced: bool) -> (&Membership, &SequencingGraph) {
        match &self.next {
            Some(next) if advanced => (&next.membership, &next.graph),
            _ => (&self.scenario.membership, &self.graph),
        }
    }
}

/// One explorable state: all protocol cores, the network, and the
/// bookkeeping the oracles observe. Cloning is cheap enough to branch on
/// (the membership/graph are behind an [`Rc`]).
#[derive(Debug, Clone)]
pub struct World {
    setup: Rc<Compiled>,
    /// One sequencing-node core per atom (solo routing: node i = atom i).
    cores: Vec<NodeCore>,
    /// The shared sequencing counters (solo layout, as in the simulator).
    protocol: ProtocolState,
    receivers: BTreeMap<NodeId, ReceiverCore>,
    /// FIFO channels, keyed `(src, dst)`. Emptied keys are removed so two
    /// histories reaching the same frames-in-flight digest identically.
    channels: BTreeMap<(Peer, Peer), VecDeque<Frame>>,
    /// Per-node staged output (group-commit mode), in stage order. Held
    /// durably across crash windows, matching the runtime's contract that
    /// a snapshot seals staged frames before anything escapes.
    staged: Vec<Vec<(Peer, Frame)>>,
    /// Frames received per node per upstream peer — the link receive
    /// progress a snapshot records (`rx_next = count + 1`).
    rx_count: Vec<BTreeMap<Peer, u64>>,
    published: Vec<bool>,
    /// The configuration epoch each publish was (or will be) sequenced
    /// under, assigned when its `Publish` transition fires; `None` until
    /// then.
    publish_epoch: Vec<Option<u64>>,
    /// Application delivery log per subscriber, in delivery order, each
    /// entry tagged with the epoch the message was sequenced under.
    /// Subscribers that leave at a reconfiguration keep their log.
    delivered: BTreeMap<NodeId, Vec<(MessageId, GroupId, u64)>>,
    /// Pending crash/restart actions per node, in plan-window order.
    faults: Vec<VecDeque<FaultKind>>,
    /// `true` once the scenario's `Reconfigure` transition has fired.
    reconfig_fired: bool,
    /// `true` while the epoch handoff is pending (reconfigure fired,
    /// `EpochAdvance` not yet taken).
    handoff: bool,
    /// Workload indices of publishes accepted during the handoff, parked
    /// in publish order for injection under the next epoch.
    parked: Vec<usize>,
}

impl World {
    /// Compiles `scenario` into its initial state.
    ///
    /// # Panics
    ///
    /// Panics if the scenario reconfigures away the sequencing path of a
    /// group the workload still publishes to — such a publish could
    /// neither park nor sequence.
    pub fn new(scenario: &Scenario) -> World {
        let (graph, next) = if scenario.reconfig.is_empty() {
            (GraphBuilder::new().build(&scenario.membership), None)
        } else {
            // Both epochs come from one incremental DynamicGraph so atom
            // ids are stable across the handoff and vanished overlaps
            // retire lazily instead of renumbering the survivors.
            let mut dynamic = GraphBuilder::new().dynamic();
            for group in scenario.membership.groups() {
                let members: Vec<NodeId> = scenario.membership.members(group).collect();
                dynamic.add_group(group, members);
            }
            let graph = dynamic.graph();
            for &op in &scenario.reconfig {
                let (node, group, join) = match op {
                    ReconfigOp::Join(node, group) => (node, group, true),
                    ReconfigOp::Leave(node, group) => (node, group, false),
                };
                let mut members: Vec<NodeId> = dynamic.membership().members(group).collect();
                let existed = !members.is_empty();
                if join {
                    members.push(node);
                } else {
                    members.retain(|&m| m != node);
                }
                if existed {
                    dynamic.remove_group(group);
                }
                if !members.is_empty() {
                    dynamic.add_group(group, members);
                }
            }
            let next_graph = dynamic.graph();
            for (i, p) in scenario.publishes.iter().enumerate() {
                assert!(
                    next_graph.ingress(p.group).is_some(),
                    "publish {i}: {} has no sequencing path in the next configuration",
                    p.group
                );
            }
            (
                graph,
                Some(NextConfig {
                    membership: dynamic.membership().clone(),
                    graph: next_graph,
                }),
            )
        };
        let num_nodes = graph.num_atoms();
        let cores = (0..num_nodes)
            .map(|i| {
                let mut core = NodeCore::new(i, scenario.group_commit);
                if scenario.sabotage_unstaged {
                    core.sabotage_skip_staging();
                }
                core
            })
            .collect();
        let protocol = ProtocolState::new(&graph);
        let receivers = scenario
            .membership
            .nodes()
            .map(|node| {
                (
                    node,
                    ReceiverCore::new(node, &scenario.membership, &graph),
                )
            })
            .collect();
        let delivered = scenario
            .membership
            .nodes()
            .map(|node| (node, Vec::new()))
            .collect();
        let mut faults = vec![VecDeque::new(); num_nodes];
        let mut windows = scenario.plan.crash_windows().to_vec();
        windows.sort_by_key(|w| (w.down_at, w.up_at, w.node));
        for w in windows {
            // Plan node indices map onto sequencing atoms; out-of-range
            // indices are ignored, as the FaultPlan contract specifies.
            if let Some(queue) = faults.get_mut(w.node) {
                queue.push_back(FaultKind::Crash);
                queue.push_back(FaultKind::Restart);
            }
        }
        World {
            setup: Rc::new(Compiled {
                scenario: scenario.clone(),
                graph,
                next,
            }),
            cores,
            protocol,
            receivers,
            channels: BTreeMap::new(),
            staged: vec![Vec::new(); num_nodes],
            rx_count: vec![BTreeMap::new(); num_nodes],
            published: vec![false; scenario.publishes.len()],
            publish_epoch: vec![None; scenario.publishes.len()],
            delivered,
            faults,
            reconfig_fired: false,
            handoff: false,
            parked: Vec::new(),
        }
    }

    /// The scenario this world was compiled from.
    pub fn scenario(&self) -> &Scenario {
        &self.setup.scenario
    }

    /// The sequencing graph currently in force (the next configuration's
    /// graph once the epoch handoff has completed).
    pub fn graph(&self) -> &SequencingGraph {
        self.setup.config(self.advanced()).1
    }

    /// `true` once the handoff has completed and the next configuration
    /// is in force.
    fn advanced(&self) -> bool {
        self.reconfig_fired && !self.handoff
    }

    /// The configuration epoch currently sequencing messages (0 until an
    /// `EpochAdvance` fires).
    pub fn epoch(&self) -> u64 {
        self.protocol.epoch()
    }

    /// `true` while the epoch handoff is pending.
    pub fn handoff_pending(&self) -> bool {
        self.handoff
    }

    /// Publishes accepted during the handoff, not yet injected.
    pub fn parked_publishes(&self) -> usize {
        self.parked.len()
    }

    /// The epoch workload publish `i` was sequenced under, `None` if it
    /// has not been published yet.
    pub fn publish_epoch(&self, i: usize) -> Option<u64> {
        self.publish_epoch[i]
    }

    /// The membership in force at configuration `epoch` (the initial one
    /// for epoch 0, the reconfigured one from epoch 1 on).
    pub fn epoch_membership(&self, epoch: u64) -> &Membership {
        match &self.setup.next {
            Some(next) if epoch >= 1 => &next.membership,
            _ => &self.setup.scenario.membership,
        }
    }

    /// The delivery log of `host`, in delivery order; each entry carries
    /// the epoch the message was sequenced under.
    pub fn delivered_log(&self, host: NodeId) -> &[(MessageId, GroupId, u64)] {
        self.delivered
            .get(&host)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every subscriber host, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.delivered.keys().copied()
    }

    /// `true` once every workload publish has been issued.
    pub fn all_published(&self) -> bool {
        self.published.iter().all(|&p| p)
    }

    /// `true` when nothing can happen anymore. The workload's structure
    /// guarantees this implies: all messages published, all channels
    /// drained, all staged output flushed, and every crashed node
    /// restarted — so terminal oracles may demand complete delivery.
    pub fn is_terminal(&self) -> bool {
        self.enabled().is_empty()
    }

    /// Whether publish `i` may fire now: not yet published, and its causal
    /// trigger (if any) already delivered at the sender.
    fn publish_enabled(&self, i: usize) -> bool {
        if self.published[i] {
            return false;
        }
        let p = &self.setup.scenario.publishes[i];
        match p.after {
            None => true,
            Some(j) => self
                .delivered_log(p.sender)
                .iter()
                .any(|(id, _, _)| *id == MessageId(j as u64)),
        }
    }

    /// The epoch-handoff drain condition (PROTOCOL.md §14): nothing of
    /// the current epoch is still in motion — no frame in a channel, no
    /// staged output, no crashed node holding parked frames, no message
    /// buffered at a receiver.
    fn drained(&self) -> bool {
        self.channels.is_empty()
            && self.staged.iter().all(Vec::is_empty)
            && self.cores.iter().all(NodeCore::is_accepting)
            && self.receivers.values().all(|r| r.queue().pending() == 0)
    }

    /// Every transition currently enabled, in a deterministic order:
    /// publishes by index, channel deliveries by `(src, dst)` key order,
    /// fault actions by node, snapshots by node, then the
    /// reconfiguration steps.
    pub fn enabled(&self) -> Vec<Transition> {
        let mut out = Vec::new();
        for i in 0..self.published.len() {
            if self.publish_enabled(i) {
                out.push(Transition::Publish(i));
            }
        }
        for (&(src, dst), queue) in &self.channels {
            debug_assert!(!queue.is_empty(), "empty channels are removed");
            out.push(Transition::Deliver(src, dst));
        }
        for (node, queue) in self.faults.iter().enumerate() {
            if let Some(&kind) = queue.front() {
                out.push(Transition::Fault(node, kind));
            }
        }
        for (node, staged) in self.staged.iter().enumerate() {
            if !staged.is_empty() && self.cores[node].is_accepting() {
                out.push(Transition::Snapshot(node));
            }
        }
        if self.setup.next.is_some() && !self.reconfig_fired {
            out.push(Transition::Reconfigure);
        }
        if self.handoff && self.drained() {
            out.push(Transition::EpochAdvance);
        }
        out
    }

    /// Executes one transition, returning what happened for the per-step
    /// oracles.
    ///
    /// # Panics
    ///
    /// Panics if `transition` is not currently enabled (checker bug).
    pub fn step(&mut self, transition: Transition) -> StepRecord {
        self.step_traced(transition, &mut NullSink)
    }

    /// [`World::step`] with a structured trace sink: the protocol cores
    /// report stamps, forwards, arrivals, buffering, and deliveries, and
    /// the model itself reports publishes and snapshot flushes. The model
    /// has no clock, so events carry whatever the caller last passed to
    /// [`TraceSink::now`] — step-index stamping is the convention (see
    /// [`crate::shrink::replay_traced`]).
    pub fn step_traced<S: TraceSink + ?Sized>(
        &mut self,
        transition: Transition,
        sink: &mut S,
    ) -> StepRecord {
        let mut record = StepRecord {
            transition,
            unstaged_sends: Vec::new(),
            delivered_now: Vec::new(),
        };
        let setup = self.setup.clone();
        let advanced = self.advanced();
        match transition {
            Transition::Publish(i) => {
                assert!(self.publish_enabled(i), "{transition} not enabled");
                let p = &setup.scenario.publishes[i];
                self.published[i] = true;
                if sink.enabled() {
                    sink.record(TraceEvent {
                        msg: Some(i as u64),
                        group: Some(u64::from(p.group.0)),
                        detail: Some(u64::from(p.sender.0)),
                        ..TraceEvent::new(EventKind::Publish, Actor::Publisher)
                    });
                }
                if self.handoff {
                    // Accepted immediately, sequenced under the next
                    // epoch: validated against the next configuration
                    // (checked at compile) and parked until the handoff.
                    self.publish_epoch[i] = Some(self.protocol.epoch() + 1);
                    self.parked.push(i);
                    return record;
                }
                self.publish_epoch[i] = Some(self.protocol.epoch());
                let msg = Message::new(MessageId(i as u64), p.sender, p.group, Vec::new());
                let ingress = setup
                    .config(advanced)
                    .1
                    .ingress(p.group)
                    .unwrap_or_else(|| panic!("{} has no sequencing path", p.group));
                self.enqueue(
                    Peer::Host(p.sender),
                    Peer::Node(ingress.index()),
                    Frame {
                        msg,
                        target_atom: Some(ingress),
                    },
                );
            }
            Transition::Deliver(src, dst) => {
                let frame = {
                    let queue = self
                        .channels
                        .get_mut(&(src, dst))
                        .unwrap_or_else(|| panic!("{transition} not enabled"));
                    let frame = queue.pop_front().expect("channel nonempty");
                    if queue.is_empty() {
                        self.channels.remove(&(src, dst));
                    }
                    frame
                };
                match dst {
                    Peer::Node(node) => {
                        *self.rx_count[node].entry(src).or_insert(0) += 1;
                        let (membership, graph) = setup.config(advanced);
                        let routing = Routing::solo(membership, graph);
                        let cmds = self.cores[node].on_event_traced(
                            &routing,
                            &mut self.protocol,
                            Event::FrameArrived { frame },
                            sink,
                        );
                        self.execute(node, cmds, &mut record, sink);
                    }
                    Peer::Host(host) => {
                        let receiver = self
                            .receivers
                            .get_mut(&host)
                            .unwrap_or_else(|| panic!("{host} has no receiver"));
                        for cmd in receiver.on_event_traced(Event::FrameArrived { frame }, sink) {
                            match cmd {
                                Command::Deliver { host, msg } => {
                                    self.delivered
                                        .get_mut(&host)
                                        .expect("known host")
                                        .push((msg.id, msg.group, msg.epoch));
                                    record
                                        .delivered_now
                                        .push((host, msg.id, msg.group, msg.epoch));
                                }
                                other => panic!("receiver emitted {other:?}"),
                            }
                        }
                    }
                    Peer::Publisher => panic!("frames never flow to the publisher"),
                }
            }
            Transition::Fault(node, kind) => {
                let popped = self.faults[node].pop_front();
                assert_eq!(popped, Some(kind), "{transition} not enabled");
                let (membership, graph) = setup.config(advanced);
                let routing = Routing::solo(membership, graph);
                let event = match kind {
                    FaultKind::Crash => Event::NodeCrashed,
                    FaultKind::Restart => Event::NodeRestarted,
                };
                let cmds =
                    self.cores[node].on_event_traced(&routing, &mut self.protocol, event, sink);
                self.execute(node, cmds, &mut record, sink);
            }
            Transition::Snapshot(node) => {
                assert!(
                    !self.staged[node].is_empty() && self.cores[node].is_accepting(),
                    "{transition} not enabled"
                );
                let rx_next: Vec<(Peer, u64)> = self.rx_count[node]
                    .iter()
                    .map(|(&peer, &count)| (peer, count + 1))
                    .collect();
                let (membership, graph) = setup.config(advanced);
                let routing = Routing::solo(membership, graph);
                let cmds = self.cores[node].on_event_traced(
                    &routing,
                    &mut self.protocol,
                    Event::SnapshotTaken { rx_next },
                    sink,
                );
                self.execute(node, cmds, &mut record, sink);
            }
            Transition::Reconfigure => {
                assert!(
                    setup.next.is_some() && !self.reconfig_fired,
                    "{transition} not enabled"
                );
                self.reconfig_fired = true;
                self.handoff = true;
            }
            Transition::EpochAdvance => {
                assert!(self.handoff && self.drained(), "{transition} not enabled");
                let next = setup.next.as_ref().expect("handoff implies next config");
                self.advance_epoch(next);
                if sink.enabled() {
                    sink.record(TraceEvent {
                        detail: Some(self.protocol.epoch()),
                        ..TraceEvent::new(EventKind::EpochAdvance, Actor::Publisher)
                    });
                }
                // Inject the parked publishes under the new epoch, in
                // publish order.
                for i in std::mem::take(&mut self.parked) {
                    let p = &setup.scenario.publishes[i];
                    let msg = Message::new(MessageId(i as u64), p.sender, p.group, Vec::new());
                    let ingress = next
                        .graph
                        .ingress(p.group)
                        .expect("parked publish validated at compile");
                    self.enqueue(
                        Peer::Host(p.sender),
                        Peer::Node(ingress.index()),
                        Frame {
                            msg,
                            target_atom: Some(ingress),
                        },
                    );
                }
            }
        }
        record
    }

    /// Swaps the next configuration in at a drained handoff point: the
    /// protocol adopts the new graph (counters of surviving atoms and
    /// groups carry over, the epoch advances), receivers re-synchronize
    /// (joiners start from the counters' current positions, leavers are
    /// dropped but keep their delivery log), and new atoms get fresh
    /// cores while retired ones stay as transit hops.
    fn advance_epoch(&mut self, next: &NextConfig) {
        self.protocol.adopt(&next.graph);
        let old_receivers = std::mem::take(&mut self.receivers);
        for node in next.membership.nodes() {
            let receiver = match old_receivers.get(&node) {
                Some(r) => {
                    let mut queue = r.queue().clone();
                    queue.resync_with(&next.membership, &next.graph, &self.protocol);
                    ReceiverCore::from_queue(queue)
                }
                None => ReceiverCore::synced(node, &next.membership, &next.graph, &self.protocol),
            };
            self.receivers.insert(node, receiver);
            self.delivered.entry(node).or_default();
        }
        let atoms = next.graph.num_atoms();
        while self.cores.len() < atoms {
            let mut core = NodeCore::new(self.cores.len(), self.setup.scenario.group_commit);
            if self.setup.scenario.sabotage_unstaged {
                core.sabotage_skip_staging();
            }
            self.cores.push(core);
        }
        self.staged.resize_with(atoms, Vec::new);
        self.rx_count.resize_with(atoms, BTreeMap::new);
        self.faults.resize_with(atoms, VecDeque::new);
        self.handoff = false;
    }

    /// [`World::step`] through the batched fast path (PROTOCOL.md §12):
    /// core events go through [`NodeCore::on_events`] /
    /// [`ReceiverCore::offer_batch`] with a [`CommandBuf`], and a
    /// restart's replayed frames re-enter the core as *one* batch instead
    /// of one call per frame. The `batch-vs-step` oracle holds this method
    /// to state-and-record equivalence with [`World::step`] on every
    /// explored edge; it exists for that differential check, not for
    /// speed.
    ///
    /// # Panics
    ///
    /// Panics if `transition` is not currently enabled (checker bug).
    pub fn step_batched(&mut self, transition: Transition) -> StepRecord {
        let mut record = StepRecord {
            transition,
            unstaged_sends: Vec::new(),
            delivered_now: Vec::new(),
        };
        let setup = self.setup.clone();
        let advanced = self.advanced();
        match transition {
            // Publishing and the reconfiguration steps touch no batched
            // core API; the paths are identical by construction.
            Transition::Publish(_) | Transition::Reconfigure | Transition::EpochAdvance => {
                return self.step(transition)
            }
            Transition::Deliver(src, dst) => {
                let frame = {
                    let queue = self
                        .channels
                        .get_mut(&(src, dst))
                        .unwrap_or_else(|| panic!("{transition} not enabled"));
                    let frame = queue.pop_front().expect("channel nonempty");
                    if queue.is_empty() {
                        self.channels.remove(&(src, dst));
                    }
                    frame
                };
                match dst {
                    Peer::Node(node) => {
                        *self.rx_count[node].entry(src).or_insert(0) += 1;
                        let (membership, graph) = setup.config(advanced);
                        let routing = Routing::solo(membership, graph);
                        let mut buf = CommandBuf::new();
                        self.cores[node].on_events(
                            &routing,
                            &mut self.protocol,
                            [Event::FrameArrived { frame }],
                            &mut buf,
                        );
                        self.execute_batched(node, buf.into_commands(), &mut record);
                    }
                    Peer::Host(host) => {
                        let receiver = self
                            .receivers
                            .get_mut(&host)
                            .unwrap_or_else(|| panic!("{host} has no receiver"));
                        let mut buf = CommandBuf::new();
                        receiver.offer_batch([Event::FrameArrived { frame }], &mut buf);
                        for cmd in buf.drain() {
                            match cmd {
                                Command::Deliver { host, msg } => {
                                    self.delivered
                                        .get_mut(&host)
                                        .expect("known host")
                                        .push((msg.id, msg.group, msg.epoch));
                                    record
                                        .delivered_now
                                        .push((host, msg.id, msg.group, msg.epoch));
                                }
                                other => panic!("receiver emitted {other:?}"),
                            }
                        }
                    }
                    Peer::Publisher => panic!("frames never flow to the publisher"),
                }
            }
            Transition::Fault(node, kind) => {
                let popped = self.faults[node].pop_front();
                assert_eq!(popped, Some(kind), "{transition} not enabled");
                let (membership, graph) = setup.config(advanced);
                let routing = Routing::solo(membership, graph);
                let event = match kind {
                    FaultKind::Crash => Event::NodeCrashed,
                    FaultKind::Restart => Event::NodeRestarted,
                };
                let mut buf = CommandBuf::new();
                self.cores[node].on_events(&routing, &mut self.protocol, [event], &mut buf);
                self.execute_batched(node, buf.into_commands(), &mut record);
            }
            Transition::Snapshot(node) => {
                assert!(
                    !self.staged[node].is_empty() && self.cores[node].is_accepting(),
                    "{transition} not enabled"
                );
                let rx_next: Vec<(Peer, u64)> = self.rx_count[node]
                    .iter()
                    .map(|(&peer, &count)| (peer, count + 1))
                    .collect();
                let (membership, graph) = setup.config(advanced);
                let routing = Routing::solo(membership, graph);
                let mut buf = CommandBuf::new();
                self.cores[node].on_events(
                    &routing,
                    &mut self.protocol,
                    [Event::SnapshotTaken { rx_next }],
                    &mut buf,
                );
                self.execute_batched(node, buf.into_commands(), &mut record);
            }
        }
        record
    }

    /// [`World::execute`] for the batched path: maximal runs of
    /// [`Command::Replay`] re-enter the core as one `on_events` batch (the
    /// command-order position of the run is preserved, so interleaved
    /// non-replay commands still execute where stepped execution would).
    fn execute_batched(&mut self, node: usize, cmds: Vec<Command>, record: &mut StepRecord) {
        let setup = self.setup.clone();
        let mut replays: Vec<Event> = Vec::new();
        for cmd in cmds {
            if !matches!(cmd, Command::Replay { .. }) && !replays.is_empty() {
                self.replay_batch(node, std::mem::take(&mut replays), record);
            }
            match cmd {
                Command::Send { to, frame } => {
                    if setup.scenario.group_commit {
                        record.unstaged_sends.push((node, frame.msg.id));
                    }
                    self.enqueue(Peer::Node(node), to, frame);
                }
                Command::Stage { to, frame } => {
                    self.staged[node].push((to, frame));
                }
                Command::Flush => {
                    let staged = std::mem::take(&mut self.staged[node]);
                    for (to, frame) in staged {
                        self.enqueue(Peer::Node(node), to, frame);
                    }
                }
                Command::Ack { .. } => {}
                Command::Replay { frame } => {
                    replays.push(Event::FrameArrived { frame });
                }
                Command::Deliver { .. } => panic!("node cores never deliver"),
            }
        }
        if !replays.is_empty() {
            self.replay_batch(node, replays, record);
        }
    }

    /// Feeds a run of replayed frames into `node`'s core as one batch and
    /// executes the resulting commands (batched, recursively).
    fn replay_batch(&mut self, node: usize, events: Vec<Event>, record: &mut StepRecord) {
        let setup = self.setup.clone();
        let (membership, graph) = setup.config(self.advanced());
        let routing = Routing::solo(membership, graph);
        let mut buf = CommandBuf::new();
        self.cores[node].on_events(&routing, &mut self.protocol, events, &mut buf);
        self.execute_batched(node, buf.into_commands(), record);
    }

    /// Executes the commands a node core returned. [`Command::Replay`]
    /// re-enters the core immediately (the driver contract: parked frames
    /// are re-presented at the restart instant, before any new arrival).
    fn execute<S: TraceSink + ?Sized>(
        &mut self,
        node: usize,
        cmds: Vec<Command>,
        record: &mut StepRecord,
        sink: &mut S,
    ) {
        let setup = self.setup.clone();
        for cmd in cmds {
            match cmd {
                Command::Send { to, frame } => {
                    if setup.scenario.group_commit {
                        // In group-commit mode a raw send means the core
                        // bypassed staging — the violation the
                        // staged-output oracle exists to catch. It still
                        // hits the wire: that is what makes it a bug.
                        record.unstaged_sends.push((node, frame.msg.id));
                    }
                    self.enqueue(Peer::Node(node), to, frame);
                }
                Command::Stage { to, frame } => {
                    self.staged[node].push((to, frame));
                }
                Command::Flush => {
                    let staged = std::mem::take(&mut self.staged[node]);
                    if sink.enabled() {
                        sink.record(TraceEvent {
                            detail: Some(staged.len() as u64),
                            ..TraceEvent::new(
                                EventKind::SnapshotFlush,
                                Actor::Node(node as u64),
                            )
                        });
                    }
                    for (to, frame) in staged {
                        self.enqueue(Peer::Node(node), to, frame);
                    }
                }
                Command::Ack { .. } => {
                    // The model's channels are reliable and unbounded, so
                    // there is no retransmission buffer to trim.
                }
                Command::Replay { frame } => {
                    let (membership, graph) = setup.config(self.advanced());
                    let routing = Routing::solo(membership, graph);
                    let cmds = self.cores[node].on_event_traced(
                        &routing,
                        &mut self.protocol,
                        Event::FrameArrived { frame },
                        sink,
                    );
                    self.execute(node, cmds, record, sink);
                }
                Command::Deliver { .. } => panic!("node cores never deliver"),
            }
        }
    }

    fn enqueue(&mut self, src: Peer, dst: Peer, frame: Frame) {
        self.channels.entry((src, dst)).or_default().push_back(frame);
    }

    /// A platform-stable digest of the complete observable state, used by
    /// the exhaustive explorer to deduplicate states reached by different
    /// schedules. Two worlds with equal digests are (modulo hash
    /// collisions) indistinguishable to every transition and oracle.
    pub fn state_hash(&self) -> u64 {
        let mut d = Digest::new();
        for core in &self.cores {
            core.digest_into(&mut d);
        }
        self.protocol.digest_into(&mut d);
        for receiver in self.receivers.values() {
            receiver.digest_into(&mut d);
        }
        d.write_u64(self.channels.len() as u64);
        for (&(src, dst), queue) in &self.channels {
            d.write_peer(src);
            d.write_peer(dst);
            d.write_u64(queue.len() as u64);
            for frame in queue {
                d.write_message(&frame.msg);
                d.write_u64(frame.target_atom.map_or(u64::MAX, |a| u64::from(a.0)));
            }
        }
        for staged in &self.staged {
            d.write_u64(staged.len() as u64);
            for (to, frame) in staged {
                d.write_peer(*to);
                d.write_message(&frame.msg);
                d.write_u64(frame.target_atom.map_or(u64::MAX, |a| u64::from(a.0)));
            }
        }
        for counts in &self.rx_count {
            d.write_u64(counts.len() as u64);
            for (&peer, &count) in counts {
                d.write_peer(peer);
                d.write_u64(count);
            }
        }
        for &p in &self.published {
            d.write_u64(u64::from(p));
        }
        for epoch in &self.publish_epoch {
            d.write_u64(epoch.map_or(u64::MAX, |e| e));
        }
        for (host, log) in &self.delivered {
            d.write_u64(u64::from(host.0));
            d.write_u64(log.len() as u64);
            for (id, group, epoch) in log {
                d.write_u64(id.0);
                d.write_u64(u64::from(group.0));
                d.write_u64(*epoch);
            }
        }
        for queue in &self.faults {
            d.write_u64(queue.len() as u64);
            for kind in queue {
                d.write_u64(match kind {
                    FaultKind::Crash => 0,
                    FaultKind::Restart => 1,
                });
            }
        }
        d.write_u64(u64::from(self.reconfig_fired));
        d.write_u64(u64::from(self.handoff));
        d.write_u64(self.parked.len() as u64);
        for &i in &self.parked {
            d.write_u64(i as u64);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    /// Always picks decision 0 — one arbitrary but fixed schedule.
    fn run_first_schedule(world: &mut World) -> usize {
        let mut steps = 0;
        while let Some(&t) = world.enabled().first() {
            world.step(t);
            steps += 1;
            assert!(steps < 10_000, "schedule does not terminate");
        }
        steps
    }

    #[test]
    fn first_schedule_terminates_with_full_delivery() {
        let sc = scenario::two_group_overlap();
        let mut world = World::new(&sc);
        run_first_schedule(&mut world);
        assert!(world.all_published());
        for host in sc.membership.nodes() {
            let expected: usize = sc
                .publishes
                .iter()
                .filter(|p| sc.membership.is_member(host, p.group))
                .count();
            assert_eq!(
                world.delivered_log(host).len(),
                expected,
                "{host} delivered everything for its groups"
            );
        }
    }

    #[test]
    fn crash_variant_drains_fault_queue_before_terminating() {
        let sc = scenario::two_group_overlap().crash_variant();
        let mut world = World::new(&sc);
        run_first_schedule(&mut world);
        assert!(world.is_terminal());
        assert_eq!(world.cores[0].recovery_stats().crashes, 1);
        assert!(world.cores[0].is_accepting(), "restarted before terminal");
    }

    #[test]
    fn group_commit_holds_output_until_snapshot() {
        let sc = scenario::two_group_overlap().with_group_commit();
        let mut world = World::new(&sc);
        // Publish m0 and deliver it to the sequencing node.
        world.step(Transition::Publish(0));
        let deliver = world
            .enabled()
            .into_iter()
            .find(|t| matches!(t, Transition::Deliver(..)))
            .expect("frame in flight");
        let record = world.step(deliver);
        assert!(record.unstaged_sends.is_empty(), "honest core stages");
        assert!(!world.staged[0].is_empty(), "fan-out staged, not sent");
        assert!(world.channels.is_empty(), "nothing escaped the node");
        // The snapshot releases it.
        let record = world.step(Transition::Snapshot(0));
        assert!(record.unstaged_sends.is_empty());
        assert!(world.staged[0].is_empty());
        assert!(!world.channels.is_empty(), "flush put frames on the wire");
    }

    #[test]
    fn sabotaged_core_is_caught_as_unstaged_send() {
        let sc = scenario::two_group_overlap().with_sabotaged_staging();
        let mut world = World::new(&sc);
        world.step(Transition::Publish(0));
        let deliver = world
            .enabled()
            .into_iter()
            .find(|t| matches!(t, Transition::Deliver(..)))
            .expect("frame in flight");
        let record = world.step(deliver);
        assert!(
            !record.unstaged_sends.is_empty(),
            "sabotage bypasses staging and is recorded"
        );
    }

    #[test]
    fn state_hash_distinguishes_and_rejoins_schedules() {
        let sc = scenario::two_group_overlap();
        let base = World::new(&sc);
        assert_eq!(base.state_hash(), World::new(&sc).state_hash());

        // Publishing m0 then m1 in either order converges to the same
        // state (independent enqueues onto different channels).
        let mut ab = base.clone();
        ab.step(Transition::Publish(0));
        let mid_a = ab.state_hash();
        ab.step(Transition::Publish(1));
        let mut ba = base.clone();
        ba.step(Transition::Publish(1));
        assert_ne!(mid_a, ba.state_hash(), "different prefixes differ");
        ba.step(Transition::Publish(0));
        assert_eq!(ab.state_hash(), ba.state_hash(), "diamond rejoins");
    }

    #[test]
    fn batched_stepping_matches_per_event_stepping() {
        // Drive stepped and batched worlds in lockstep over a varied
        // schedule (rotating pick hits publishes, deliveries, crash
        // windows with parked-frame replays, and snapshot flushes).
        for sc in [
            scenario::two_group_overlap(),
            scenario::two_group_overlap().crash_variant(),
            scenario::two_group_overlap().with_group_commit(),
            scenario::crash_during_handoff(),
        ] {
            let mut stepped = World::new(&sc);
            let mut batched = World::new(&sc);
            let mut steps = 0usize;
            loop {
                let enabled = stepped.enabled();
                assert_eq!(enabled, batched.enabled(), "{}: enabled sets agree", sc.name);
                let Some(&t) = enabled.get(steps % enabled.len().max(1)) else {
                    break;
                };
                let s = stepped.step(t);
                let b = batched.step_batched(t);
                assert_eq!(
                    stepped.state_hash(),
                    batched.state_hash(),
                    "{}: states agree after {t}",
                    sc.name
                );
                assert_eq!(format!("{s:?}"), format!("{b:?}"), "{}: records agree", sc.name);
                steps += 1;
                assert!(steps < 10_000, "schedule does not terminate");
            }
        }
    }

    #[test]
    fn transitions_render_for_replay_logs() {
        assert_eq!(Transition::Publish(3).to_string(), "publish m3");
        assert_eq!(
            Transition::Deliver(Peer::Host(NodeId(1)), Peer::Node(0)).to_string(),
            "deliver host1->node0"
        );
        assert_eq!(
            Transition::Fault(2, FaultKind::Crash).to_string(),
            "crash node2"
        );
        assert_eq!(
            Transition::Fault(2, FaultKind::Restart).to_string(),
            "restart node2"
        );
        assert_eq!(Transition::Snapshot(1).to_string(), "snapshot node1");
        assert_eq!(Transition::Reconfigure.to_string(), "reconfigure");
        assert_eq!(Transition::EpochAdvance.to_string(), "advance-epoch");
    }

    #[test]
    fn handoff_parks_publishes_and_advances_once_drained() {
        let sc = scenario::join_during_flight();
        let mut world = World::new(&sc);
        // m0 flies under epoch 0, then the reconfiguration begins.
        world.step(Transition::Publish(0));
        world.step(Transition::Reconfigure);
        assert!(world.handoff_pending());
        assert!(
            !world.enabled().contains(&Transition::EpochAdvance),
            "m0 still in flight: the epoch cannot advance"
        );
        // Publishes during the handoff park for the next epoch.
        world.step(Transition::Publish(1));
        assert_eq!(world.parked_publishes(), 1);
        assert_eq!(world.publish_epoch(0), Some(0));
        assert_eq!(world.publish_epoch(1), Some(1));
        // Drain epoch 0 (deliver every channel head until quiet).
        while let Some(&t) = world
            .enabled()
            .iter()
            .find(|t| matches!(t, Transition::Deliver(..)))
        {
            world.step(t);
        }
        assert!(world.enabled().contains(&Transition::EpochAdvance));
        world.step(Transition::EpochAdvance);
        assert_eq!(world.epoch(), 1);
        assert!(!world.handoff_pending());
        assert_eq!(world.parked_publishes(), 0, "parked m1 was injected");
        // Finish the run: remaining publish + the injected frames.
        while let Some(&t) = world.enabled().first() {
            world.step(t);
        }
        // n1 subscribes to both groups in both epochs: it saw m0 under
        // epoch 0 and m1 under epoch 1. The joiner n4 sees only epoch 1.
        let n1: Vec<(MessageId, u64)> = world
            .delivered_log(NodeId(1))
            .iter()
            .map(|&(id, _, e)| (id, e))
            .collect();
        assert!(n1.contains(&(MessageId(0), 0)));
        assert!(n1.contains(&(MessageId(1), 1)));
        assert!(world
            .delivered_log(NodeId(4))
            .iter()
            .all(|&(_, _, e)| e == 1));
        assert!(!world.delivered_log(NodeId(4)).is_empty());
    }

    #[test]
    fn leave_scenario_retires_the_old_overlap_atom_lazily() {
        let sc = scenario::leave_with_parked_atoms();
        let world = World::new(&sc);
        let initial_atoms = world.graph().num_atoms();
        let mut world = World::new(&sc);
        world.step(Transition::Reconfigure);
        while let Some(&t) = world.enabled().first() {
            world.step(t);
        }
        assert_eq!(world.epoch(), 1);
        let graph = world.graph();
        assert!(
            graph.num_atoms() > initial_atoms,
            "the shrunk overlap got a fresh atom beside the retired one"
        );
        assert!(
            graph.atoms().iter().any(|a| graph.is_retired(a.id)),
            "the vanished overlap's atom is retired, not renumbered"
        );
        // The leaver kept its history but received nothing under epoch 1.
        assert!(world
            .delivered_log(NodeId(2))
            .iter()
            .all(|&(_, group, e)| e == 0 || group == GroupId(0)));
    }
}
