//! Pluggable invariant oracles checked against every explored state.
//!
//! Each oracle sees the world at four moments: once at the initial state
//! ([`Invariant::check_initial`]), on every explored edge before it fires
//! ([`Invariant::check_edge`] — where differential oracles like
//! [`BatchVsStep`] re-execute the transition on clones), after every
//! executed transition ([`Invariant::check_step`]), and at every terminal
//! state ([`Invariant::check_terminal`]). Safety properties (consistency,
//! causality, no-duplication, staged output) are per-step so a violation
//! is caught at the earliest state exhibiting it — which keeps
//! counterexamples short before shrinking even starts. Completeness
//! (no-loss) is terminal-only: a message legitimately spends intermediate
//! states in flight.

use seqnet_core::MessageId;
use seqnet_membership::NodeId;
use seqnet_overlap::Colocation;
use std::collections::BTreeSet;
use std::fmt;

use crate::model::{StepRecord, Transition, World};

/// A detected invariant violation: which oracle fired and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// [`Invariant::name`] of the oracle that fired.
    pub invariant: &'static str,
    /// Human-readable description of the offending observation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// One pluggable oracle. Default implementations accept everything, so an
/// oracle overrides only the moments it cares about.
pub trait Invariant {
    /// Stable identifier, used to match violations during shrinking (a
    /// shrunk trace must fail the *same* oracle as the original).
    fn name(&self) -> &'static str;

    /// Checked once on the initial state, before any transition.
    fn check_initial(&self, _world: &World) -> Result<(), Violation> {
        Ok(())
    }

    /// Checked on every explored edge, *before* the transition executes
    /// on the exploration's own world: `pre` is the source state and
    /// `transition` is enabled in it. Differential oracles (like
    /// [`BatchVsStep`]) re-execute the transition on clones of `pre`
    /// here; the exploration's world is untouched either way.
    fn check_edge(&self, _pre: &World, _transition: Transition) -> Result<(), Violation> {
        Ok(())
    }

    /// Checked after every executed transition.
    fn check_step(&self, _world: &World, _record: &StepRecord) -> Result<(), Violation> {
        Ok(())
    }

    /// Checked at every terminal (no enabled transitions) state.
    fn check_terminal(&self, _world: &World) -> Result<(), Violation> {
        Ok(())
    }
}

/// Theorem 1, pairwise form: any two subscribers deliver their *common*
/// messages in the same relative order. Common messages are exactly the
/// messages of shared groups; for hosts sharing two groups this also
/// checks the cross-group total order the double-overlap stamp provides —
/// the "case 3" condition the original ad-hoc model test swept.
pub struct PairwiseConsistency;

impl Invariant for PairwiseConsistency {
    fn name(&self) -> &'static str {
        "pairwise-consistency"
    }

    fn check_step(&self, world: &World, _record: &StepRecord) -> Result<(), Violation> {
        let hosts: Vec<NodeId> = world.hosts().collect();
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                let log_a = world.delivered_log(a);
                let log_b = world.delivered_log(b);
                let ids_a: BTreeSet<MessageId> = log_a.iter().map(|(id, _, _)| *id).collect();
                let ids_b: BTreeSet<MessageId> = log_b.iter().map(|(id, _, _)| *id).collect();
                let proj_a: Vec<MessageId> = log_a
                    .iter()
                    .map(|(id, _, _)| *id)
                    .filter(|id| ids_b.contains(id))
                    .collect();
                let proj_b: Vec<MessageId> = log_b
                    .iter()
                    .map(|(id, _, _)| *id)
                    .filter(|id| ids_a.contains(id))
                    .collect();
                if proj_a != proj_b {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!(
                            "{a} and {b} disagree on common messages: {proj_a:?} vs {proj_b:?}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Causality for self-subscribing publishers: when publish `i` was
/// triggered by the sender's local delivery of publish `j`, no subscriber
/// may deliver `i` before `j`.
pub struct CausalOrder;

impl Invariant for CausalOrder {
    fn name(&self) -> &'static str {
        "causal-order"
    }

    fn check_step(&self, world: &World, _record: &StepRecord) -> Result<(), Violation> {
        let publishes = &world.scenario().publishes;
        for (i, p) in publishes.iter().enumerate() {
            let Some(j) = p.after else { continue };
            let effect = MessageId(i as u64);
            let cause = MessageId(j as u64);
            for host in world.hosts() {
                let log = world.delivered_log(host);
                let pos_effect = log.iter().position(|(id, _, _)| *id == effect);
                let pos_cause = log.iter().position(|(id, _, _)| *id == cause);
                if let (Some(pe), Some(pc)) = (pos_effect, pos_cause) {
                    if pe < pc {
                        return Err(Violation {
                            invariant: self.name(),
                            detail: format!(
                                "{host} delivered effect {effect} (pos {pe}) before cause {cause} (pos {pc})"
                            ),
                        });
                    }
                } else if pos_effect.is_some()
                    && pos_cause.is_none()
                    && world.publish_epoch(j).is_some_and(|epoch| {
                        world
                            .epoch_membership(epoch)
                            .is_member(host, publishes[j].group)
                    })
                {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!(
                            "{host} delivered effect {effect} without its cause {cause}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// No duplication (per step: a delivery log never repeats an id, and a
/// host only receives messages of groups it subscribes to *in the epoch
/// the message was sequenced under*) and no loss (terminal: every publish
/// reached every member its epoch's configuration prescribes, across
/// whatever crash windows and reconfigurations the schedule contained).
pub struct NoLossNoDup;

impl Invariant for NoLossNoDup {
    fn name(&self) -> &'static str {
        "no-loss-no-dup"
    }

    fn check_step(&self, world: &World, _record: &StepRecord) -> Result<(), Violation> {
        for host in world.hosts() {
            let log = world.delivered_log(host);
            let mut seen = BTreeSet::new();
            for &(id, group, epoch) in log {
                if !seen.insert(id) {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!("{host} delivered {id} twice"),
                    });
                }
                if !world.epoch_membership(epoch).is_member(host, group) {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!(
                            "{host} delivered {id} of {group} without subscribing in epoch {epoch}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_terminal(&self, world: &World) -> Result<(), Violation> {
        if !world.all_published() {
            return Err(Violation {
                invariant: self.name(),
                detail: "terminal state with unpublished workload messages".into(),
            });
        }
        for (i, p) in world.scenario().publishes.iter().enumerate() {
            let id = MessageId(i as u64);
            // The audience is the membership of the epoch the publish was
            // sequenced under: a pre-handoff message still reaches a
            // leaver, a parked one already reaches a joiner.
            let epoch = world
                .publish_epoch(i)
                .expect("all_published checked above");
            for member in world.epoch_membership(epoch).members(p.group) {
                let count = world
                    .delivered_log(member)
                    .iter()
                    .filter(|(d, _, _)| *d == id)
                    .count();
                if count != 1 {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!(
                            "{member} delivered {id} of {} {count} times at terminal (epoch {epoch})",
                            p.group
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The epoch-handoff contract (PROTOCOL.md §14), checked whenever a
/// scenario reconfigures online: epochs never run backwards at any
/// subscriber (every epoch-N message is delivered before any epoch-N+1
/// message — the global-drain handoff rule), a delivery's epoch tag
/// always matches the epoch its publish was sequenced under, nothing is
/// delivered out of a future epoch, and a terminal state has no pending
/// handoff or parked publish left behind.
pub struct EpochHandoff;

impl Invariant for EpochHandoff {
    fn name(&self) -> &'static str {
        "epoch-handoff"
    }

    fn check_step(&self, world: &World, record: &StepRecord) -> Result<(), Violation> {
        for host in world.hosts() {
            let log = world.delivered_log(host);
            for pair in log.windows(2) {
                if pair[1].2 < pair[0].2 {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!(
                            "{host} delivered epoch-{} {} after epoch-{} {}: epochs ran backwards",
                            pair[1].2, pair[1].0, pair[0].2, pair[0].0
                        ),
                    });
                }
            }
        }
        for &(host, id, _, epoch) in &record.delivered_now {
            let assigned = world.publish_epoch(id.0 as usize);
            if assigned != Some(epoch) {
                return Err(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "{host} delivered {id} under epoch {epoch}, but it was sequenced under {assigned:?}"
                    ),
                });
            }
            if epoch > world.epoch() {
                return Err(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "{host} delivered {id} of future epoch {epoch} (current {})",
                        world.epoch()
                    ),
                });
            }
        }
        Ok(())
    }

    fn check_terminal(&self, world: &World) -> Result<(), Violation> {
        if world.handoff_pending() {
            return Err(Violation {
                invariant: self.name(),
                detail: "terminal state with the epoch handoff still pending".into(),
            });
        }
        if world.parked_publishes() > 0 {
            return Err(Violation {
                invariant: self.name(),
                detail: format!(
                    "terminal state with {} parked publishes never injected",
                    world.parked_publishes()
                ),
            });
        }
        Ok(())
    }
}

/// The group-commit staged-output rule (PROTOCOL.md §8): while the
/// discipline is in force, nothing a node produces may reach the wire
/// before a snapshot sealed it. The model records any raw send a
/// group-commit core emits; one is a violation.
pub struct StagedOutput;

impl Invariant for StagedOutput {
    fn name(&self) -> &'static str {
        "staged-output"
    }

    fn check_step(&self, _world: &World, record: &StepRecord) -> Result<(), Violation> {
        if let Some(&(node, id)) = record.unstaged_sends.first() {
            return Err(Violation {
                invariant: self.name(),
                detail: format!(
                    "node{node} sent {id} to the wire without staging (during `{}`)",
                    record.transition
                ),
            });
        }
        Ok(())
    }
}

/// C1/C2 structural validity of the compiled deployment: the sequencing
/// graph built by `overlap::build` validates against the membership
/// (every double overlap has exactly one live atom, every path is
/// well-formed), and `overlap::colocate` places every live atom for a
/// spread of seeds. Checked once — the topology never changes mid-run.
pub struct StructuralValidity;

impl Invariant for StructuralValidity {
    fn name(&self) -> &'static str {
        "structural-validity"
    }

    fn check_initial(&self, world: &World) -> Result<(), Violation> {
        let graph = world.graph();
        if let Err(e) = graph.validate_against(&world.scenario().membership) {
            return Err(Violation {
                invariant: self.name(),
                detail: format!("graph fails C1/C2 validation: {e}"),
            });
        }
        for seed in 0..4u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let coloc = Colocation::compute(graph, &mut rng);
            for atom in graph.atoms() {
                if graph.is_retired(atom.id) {
                    continue;
                }
                if coloc.node_of(atom.id).is_none() {
                    return Err(Violation {
                        invariant: self.name(),
                        detail: format!("colocation (seed {seed}) left {} unplaced", atom.id),
                    });
                }
            }
            if coloc.num_nodes() == 0 && graph.num_atoms() > 0 {
                return Err(Violation {
                    invariant: self.name(),
                    detail: format!("colocation (seed {seed}) produced no sequencing nodes"),
                });
            }
        }
        Ok(())
    }
}

/// The PROTOCOL.md §12 equivalence contract, checked differentially on
/// every explored edge: executing any enabled transition through the
/// batched fast path ([`World::step_batched`] — `NodeCore::on_events`,
/// `ReceiverCore::offer_batch`, batched restart replay) must leave the
/// world in exactly the state, with exactly the step record, that
/// per-event stepping produces. With this oracle registered,
/// `seqnet-check --all` fails if batched and stepped execution diverge on
/// any explored schedule — while the exploration itself keeps stepping
/// the *unbatched* semantics.
pub struct BatchVsStep;

impl Invariant for BatchVsStep {
    fn name(&self) -> &'static str {
        "batch-vs-step"
    }

    fn check_edge(&self, pre: &World, transition: Transition) -> Result<(), Violation> {
        let mut stepped = pre.clone();
        let mut batched = pre.clone();
        let s = stepped.step(transition);
        let b = batched.step_batched(transition);
        if stepped.state_hash() != batched.state_hash() {
            return Err(Violation {
                invariant: self.name(),
                detail: format!(
                    "batched execution of `{transition}` diverged from stepped: state {:016x} vs {:016x}",
                    batched.state_hash(),
                    stepped.state_hash()
                ),
            });
        }
        if s.delivered_now != b.delivered_now {
            return Err(Violation {
                invariant: self.name(),
                detail: format!(
                    "batched `{transition}` delivered {:?}, stepped delivered {:?}",
                    b.delivered_now, s.delivered_now
                ),
            });
        }
        if s.unstaged_sends != b.unstaged_sends {
            return Err(Violation {
                invariant: self.name(),
                detail: format!(
                    "batched `{transition}` recorded unstaged sends {:?}, stepped {:?}",
                    b.unstaged_sends, s.unstaged_sends
                ),
            });
        }
        Ok(())
    }
}

use rand::SeedableRng;

/// The full oracle battery every checked run uses by default.
pub fn default_oracles() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(PairwiseConsistency),
        Box::new(CausalOrder),
        Box::new(NoLossNoDup),
        Box::new(StagedOutput),
        Box::new(StructuralValidity),
        Box::new(BatchVsStep),
        Box::new(EpochHandoff),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Transition;
    use crate::scenario;

    fn run_to_terminal(world: &mut World) {
        while let Some(&t) = world.enabled().first() {
            world.step(t);
        }
    }

    #[test]
    fn default_battery_has_the_seven_oracles() {
        let names: Vec<&str> = default_oracles().iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "pairwise-consistency",
                "causal-order",
                "no-loss-no-dup",
                "staged-output",
                "structural-validity",
                "batch-vs-step",
                "epoch-handoff",
            ]
        );
    }

    #[test]
    fn batch_vs_step_accepts_every_edge_of_a_crashy_run() {
        let sc = scenario::two_group_overlap().with_group_commit().crash_variant();
        let mut world = World::new(&sc);
        let mut steps = 0usize;
        loop {
            let enabled = world.enabled();
            let Some(&t) = enabled.get(steps % enabled.len().max(1)) else {
                break;
            };
            BatchVsStep
                .check_edge(&world, t)
                .unwrap_or_else(|v| panic!("step {steps}: {v}"));
            world.step(t);
            steps += 1;
            assert!(steps < 10_000, "schedule does not terminate");
        }
    }

    #[test]
    fn honest_run_passes_every_oracle() {
        let sc = scenario::two_group_overlap();
        let oracles = default_oracles();
        let mut world = World::new(&sc);
        for o in &oracles {
            o.check_initial(&world).expect("initial state valid");
        }
        while let Some(&t) = world.enabled().first() {
            let record = world.step(t);
            for o in &oracles {
                o.check_step(&world, &record).expect("step valid");
            }
        }
        for o in &oracles {
            o.check_terminal(&world).expect("terminal state valid");
        }
    }

    #[test]
    fn staged_output_oracle_fires_on_sabotage() {
        let sc = scenario::two_group_overlap().with_sabotaged_staging();
        let mut world = World::new(&sc);
        world.step(Transition::Publish(0));
        let deliver = world
            .enabled()
            .into_iter()
            .find(|t| matches!(t, Transition::Deliver(..)))
            .expect("frame in flight");
        let record = world.step(deliver);
        let violation = StagedOutput
            .check_step(&world, &record)
            .expect_err("sabotage detected");
        assert_eq!(violation.invariant, "staged-output");
    }

    #[test]
    fn no_loss_fires_on_incomplete_terminal() {
        // A world that merely *looks* terminal to the oracle: we call the
        // terminal check mid-run, when deliveries are still outstanding.
        let sc = scenario::two_group_overlap();
        let mut world = World::new(&sc);
        world.step(Transition::Publish(0));
        let violation = NoLossNoDup
            .check_terminal(&world)
            .expect_err("missing deliveries detected");
        assert_eq!(violation.invariant, "no-loss-no-dup");
    }

    #[test]
    fn structural_validity_passes_on_every_registry_scenario() {
        for sc in scenario::registry() {
            let world = World::new(&sc);
            StructuralValidity
                .check_initial(&world)
                .unwrap_or_else(|v| panic!("{}: {v}", sc.name));
        }
    }

    #[test]
    fn terminal_runs_of_all_registry_scenarios_pass_no_loss() {
        for sc in scenario::registry() {
            let mut world = World::new(&sc);
            run_to_terminal(&mut world);
            NoLossNoDup
                .check_terminal(&world)
                .unwrap_or_else(|v| panic!("{}: {v}", sc.name));
        }
    }

    #[test]
    fn churn_scenarios_pass_the_epoch_aware_oracles_step_by_step() {
        for sc in [
            scenario::join_during_flight(),
            scenario::leave_with_parked_atoms(),
            scenario::crash_during_handoff(),
        ] {
            let mut world = World::new(&sc);
            while let Some(&t) = world.enabled().first() {
                let record = world.step(t);
                NoLossNoDup
                    .check_step(&world, &record)
                    .unwrap_or_else(|v| panic!("{}: {v}", sc.name));
                EpochHandoff
                    .check_step(&world, &record)
                    .unwrap_or_else(|v| panic!("{}: {v}", sc.name));
            }
            NoLossNoDup
                .check_terminal(&world)
                .unwrap_or_else(|v| panic!("{}: {v}", sc.name));
            EpochHandoff
                .check_terminal(&world)
                .unwrap_or_else(|v| panic!("{}: {v}", sc.name));
            assert_eq!(world.epoch(), 1, "{}: handoff advanced the epoch", sc.name);
        }
    }

    #[test]
    fn epoch_handoff_oracle_fires_on_an_abandoned_handoff() {
        // Fire the reconfiguration, then pretend the run is over while the
        // drain is still pending: the terminal check must object.
        let sc = scenario::join_during_flight();
        let mut world = World::new(&sc);
        world.step(Transition::Publish(0));
        world.step(Transition::Reconfigure);
        assert!(world.handoff_pending());
        let violation = EpochHandoff
            .check_terminal(&world)
            .expect_err("pending handoff detected");
        assert_eq!(violation.invariant, "epoch-handoff");
    }
}
