//! Deterministic replay and counterexample shrinking.
//!
//! [`replay`] re-executes a decision list against a scenario, producing a
//! canonical executed trace, a step-by-step log (used by the determinism
//! tests to assert byte-identical re-runs), and the violation, if any.
//! [`shrink`] then minimizes a failing trace with a ddmin-style loop:
//! chunk deletion at halving granularities plus per-position value
//! lowering, accepting only candidates that fail the *same* oracle. The
//! result is the short, replayable `seed=… decisions=[…]` line the CLI
//! and CI print.

use std::fmt::Write as _;

use seqnet_core::proto::trace::{NullSink, TraceSink};
use seqnet_sim::ScheduleTrace;

use crate::invariants::{Invariant, Violation};
use crate::model::World;
use crate::scenario::Scenario;

/// The outcome of replaying one decision list.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// The decisions actually executed, canonicalized: each raw decision
    /// is reduced modulo the number of enabled transitions at its step,
    /// and the list is truncated at the violation (or at the terminal
    /// state). Replaying `executed` reproduces this result exactly.
    pub executed: Vec<u32>,
    /// The violation the replay hit, if any.
    pub violation: Option<Violation>,
    /// A deterministic line-per-step log of the run (transition chosen,
    /// enabled count, post-state hash), ending with the verdict.
    pub log: String,
}

impl ReplayResult {
    /// `true` if the replay ended in a violation.
    pub fn failed(&self) -> bool {
        self.violation.is_some()
    }
}

/// Replays `decisions` against a fresh world for `scenario`. Out-of-range
/// decisions are interpreted modulo the enabled count (so shrinking can
/// lower values freely); the replay stops at the first violation, at a
/// terminal state, or when the decisions run out — terminal oracles run
/// only in the terminal case.
pub fn replay(
    scenario: &Scenario,
    oracles: &[Box<dyn Invariant>],
    decisions: &[u32],
) -> ReplayResult {
    replay_traced(scenario, oracles, decisions, &mut NullSink)
}

/// [`replay`] with a structured trace sink: every step's protocol events
/// are reported, stamped with the step index (the model has no clock, so
/// the decision position *is* the causal time). Because the replay itself
/// is deterministic, two replays of the same canonical decision list
/// produce byte-identical JSONL dumps — the flight-recorder contract the
/// integration tests pin down.
pub fn replay_traced<S: TraceSink + ?Sized>(
    scenario: &Scenario,
    oracles: &[Box<dyn Invariant>],
    decisions: &[u32],
    sink: &mut S,
) -> ReplayResult {
    let mut world = World::new(scenario);
    let mut result = ReplayResult {
        executed: Vec::new(),
        violation: None,
        log: String::new(),
    };
    let _ = writeln!(result.log, "scenario {}", scenario.name);
    for oracle in oracles {
        if let Err(violation) = oracle.check_initial(&world) {
            let _ = writeln!(result.log, "initial: VIOLATION {violation}");
            result.violation = Some(violation);
            return result;
        }
    }
    for (step, &raw) in decisions.iter().enumerate() {
        let enabled = world.enabled();
        if enabled.is_empty() {
            break;
        }
        let index = raw % enabled.len() as u32;
        let transition = enabled[index as usize];
        for oracle in oracles {
            if let Err(violation) = oracle.check_edge(&world, transition) {
                result.executed.push(index);
                let _ = writeln!(result.log, "step {step}: VIOLATION {violation}");
                result.violation = Some(violation);
                return result;
            }
        }
        sink.now(step as u64);
        let record = world.step_traced(transition, sink);
        result.executed.push(index);
        let _ = writeln!(
            result.log,
            "step {step}: pick {index}/{} {transition} hash={:016x}",
            enabled.len(),
            world.state_hash()
        );
        for oracle in oracles {
            if let Err(violation) = oracle.check_step(&world, &record) {
                let _ = writeln!(result.log, "step {step}: VIOLATION {violation}");
                result.violation = Some(violation);
                return result;
            }
        }
    }
    if world.enabled().is_empty() {
        for oracle in oracles {
            if let Err(violation) = oracle.check_terminal(&world) {
                let _ = writeln!(result.log, "terminal: VIOLATION {violation}");
                result.violation = Some(violation);
                return result;
            }
        }
        let _ = writeln!(result.log, "terminal: ok");
    } else {
        let _ = writeln!(result.log, "stopped: decisions exhausted");
    }
    result
}

/// Shrinks a failing trace to a (locally) minimal one that violates the
/// same oracle, preserving the trace seed. Returns the input trace
/// (canonicalized) unchanged if it does not actually fail. Bounded by an
/// internal replay budget, so shrinking always terminates quickly.
pub fn shrink(
    scenario: &Scenario,
    oracles: &[Box<dyn Invariant>],
    trace: &ScheduleTrace,
) -> ScheduleTrace {
    let initial = replay(scenario, oracles, &trace.decisions);
    let Some(original) = initial.violation else {
        return ScheduleTrace {
            seed: trace.seed,
            decisions: initial.executed,
        };
    };
    let target = original.invariant;
    let mut current = initial.executed;
    let mut budget: u32 = 1_000;
    // Accepts a candidate iff it fails the same oracle; returns the
    // canonical executed prefix on acceptance.
    let mut attempt = |candidate: &[u32], budget: &mut u32| -> Option<Vec<u32>> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let res = replay(scenario, oracles, candidate);
        match res.violation {
            Some(v) if v.invariant == target => Some(res.executed),
            _ => None,
        }
    };

    let mut improved = true;
    while improved && budget > 0 {
        improved = false;
        // Chunk deletion, coarse to fine.
        let mut chunk = current.len().max(1) / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start < current.len() {
                let mut candidate = current.clone();
                candidate.drain(start..(start + chunk).min(candidate.len()));
                if candidate.len() < current.len() {
                    if let Some(executed) = attempt(&candidate, &mut budget) {
                        if executed.len() < current.len() {
                            current = executed;
                            improved = true;
                            continue; // same start, shorter list
                        }
                    }
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Value lowering: prefer decision 0, then one lower. Accept only
        // strict decreases of the (length, lexicographic) measure, which
        // guarantees termination independent of the budget.
        let mut i = 0;
        while i < current.len() {
            for lower in [0, current[i].saturating_sub(1)] {
                if lower < current[i] {
                    let mut candidate = current.clone();
                    candidate[i] = lower;
                    if let Some(executed) = attempt(&candidate, &mut budget) {
                        let smaller = executed.len() < current.len()
                            || (executed.len() == current.len() && executed < current);
                        if smaller {
                            current = executed;
                            improved = true;
                            break;
                        }
                    }
                }
            }
            i += 1;
        }
    }
    ScheduleTrace {
        seed: trace.seed,
        decisions: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig, Outcome};
    use crate::invariants::default_oracles;
    use crate::scenario;

    #[test]
    fn replay_of_empty_decisions_checks_nothing_but_initial() {
        let sc = scenario::two_group_overlap();
        let res = replay(&sc, &default_oracles(), &[]);
        assert!(!res.failed());
        assert!(res.executed.is_empty());
        assert!(res.log.contains("stopped: decisions exhausted"));
    }

    #[test]
    fn replay_canonicalizes_out_of_range_decisions() {
        let sc = scenario::two_group_overlap();
        // Step 0 has exactly 3 enabled transitions (the three publishes),
        // so a raw decision of 100 resolves to 100 % 3 == 1.
        let res = replay(&sc, &default_oracles(), &[100]);
        assert_eq!(res.executed, vec![1]);
        // Replaying the canonical form reproduces the identical log.
        let again = replay(&sc, &default_oracles(), &res.executed);
        assert_eq!(res.log, again.log);
    }

    #[test]
    fn shrunk_sabotage_counterexample_is_minimal_and_replays() {
        let sc = scenario::two_group_overlap().with_sabotaged_staging();
        let oracles = default_oracles();
        let outcome = explore(&sc, &oracles, &ExploreConfig::default());
        let Outcome::Fail(cex) = outcome else {
            panic!("sabotage must fail")
        };
        let shrunk = shrink(&sc, &oracles, &cex.trace);
        assert!(
            shrunk.len() <= 15,
            "shrunk counterexample fits the acceptance bound: {shrunk}"
        );
        assert!(shrunk.len() <= cex.trace.len());
        // The shrinker only deletes steps and lowers indices, so it lands
        // on publishes followed by one deliver — at most 4 decisions here
        // (the truly minimal schedule, publish + deliver, would need an
        // index *raise*).
        assert!(shrunk.len() <= 4, "near-minimal: {shrunk}");
        let res = replay(&sc, &oracles, &shrunk.decisions);
        let violation = res.violation.expect("shrunk trace still fails");
        assert_eq!(violation.invariant, cex.violation.invariant);
        assert_eq!(res.executed, shrunk.decisions, "shrunk trace is canonical");
    }

    #[test]
    fn shrinking_a_passing_trace_returns_it_canonicalized() {
        let sc = scenario::two_group_overlap();
        let oracles = default_oracles();
        let trace = ScheduleTrace {
            seed: 9,
            decisions: vec![30, 30, 30],
        };
        let out = shrink(&sc, &oracles, &trace);
        assert_eq!(out.seed, 9);
        let res = replay(&sc, &oracles, &trace.decisions);
        assert_eq!(out.decisions, res.executed);
    }
}
