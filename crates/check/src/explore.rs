//! Bounded exhaustive exploration of every schedule of a scenario.
//!
//! Depth-first search over the transition system defined by
//! [`World::enabled`]/[`World::step`], deduplicating states by
//! [`World::state_hash`] so the diamond explosion of independent events
//! (publish A then B vs B then A) collapses. Exploration is bounded by a
//! depth cap and a state cap; hitting either sets
//! [`ExploreStats::truncated`] rather than failing, so callers can tell a
//! genuinely exhaustive pass from a budgeted one.

use std::collections::HashSet;

use seqnet_sim::ScheduleTrace;

use crate::invariants::{Invariant, Violation};
use crate::model::World;
use crate::scenario::Scenario;

/// Bounds for one exhaustive exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum schedule length explored before truncating a branch.
    pub max_depth: usize,
    /// Maximum number of distinct states visited before truncating.
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 64,
            max_states: 250_000,
        }
    }
}

/// What a passing exploration covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited (after dedup), including the initial one.
    pub states: usize,
    /// Transitions executed (includes re-visits of deduplicated states).
    pub transitions: u64,
    /// Terminal states reached (first visit only).
    pub terminals: u64,
    /// Longest schedule prefix explored.
    pub max_depth_seen: usize,
    /// `true` if a bound cut the search short — the pass is then a bounded
    /// smoke test, not a proof over the configured space.
    pub truncated: bool,
}

/// A failing schedule: the replayable trace plus what it violated.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The schedule that exhibits the violation, replayable via
    /// [`crate::shrink::replay`].
    pub trace: ScheduleTrace,
    /// The oracle verdict.
    pub violation: Violation,
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every explored schedule satisfied every oracle.
    Pass(ExploreStats),
    /// Some schedule failed an oracle.
    Fail(Counterexample),
}

impl Outcome {
    /// The counterexample, if the exploration failed.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Outcome::Pass(_) => None,
            Outcome::Fail(cex) => Some(cex),
        }
    }
}

/// Explores every schedule of `scenario` (within `config` bounds) against
/// `oracles`. Decision indices in a returned counterexample index the
/// deterministic [`World::enabled`] list, seed 0 (exhaustive runs have no
/// randomness).
pub fn explore(
    scenario: &Scenario,
    oracles: &[Box<dyn Invariant>],
    config: &ExploreConfig,
) -> Outcome {
    let world = World::new(scenario);
    for oracle in oracles {
        if let Err(violation) = oracle.check_initial(&world) {
            return Outcome::Fail(Counterexample {
                trace: ScheduleTrace::new(0),
                violation,
            });
        }
    }
    let mut seen = HashSet::new();
    seen.insert(world.state_hash());
    let mut stats = ExploreStats {
        states: 1,
        ..ExploreStats::default()
    };
    let mut path = Vec::new();
    match dfs(&world, oracles, config, &mut seen, &mut stats, &mut path) {
        Err(cex) => Outcome::Fail(cex),
        Ok(()) => Outcome::Pass(stats),
    }
}

fn dfs(
    world: &World,
    oracles: &[Box<dyn Invariant>],
    config: &ExploreConfig,
    seen: &mut HashSet<u64>,
    stats: &mut ExploreStats,
    path: &mut Vec<u32>,
) -> Result<(), Counterexample> {
    let enabled = world.enabled();
    if enabled.is_empty() {
        stats.terminals += 1;
        for oracle in oracles {
            if let Err(violation) = oracle.check_terminal(world) {
                return Err(Counterexample {
                    trace: ScheduleTrace {
                        seed: 0,
                        decisions: path.clone(),
                    },
                    violation,
                });
            }
        }
        return Ok(());
    }
    if path.len() >= config.max_depth {
        stats.truncated = true;
        return Ok(());
    }
    for (index, &transition) in enabled.iter().enumerate() {
        if stats.states >= config.max_states {
            stats.truncated = true;
            return Ok(());
        }
        for oracle in oracles {
            if let Err(violation) = oracle.check_edge(world, transition) {
                let mut decisions = path.clone();
                decisions.push(index as u32);
                return Err(Counterexample {
                    trace: ScheduleTrace { seed: 0, decisions },
                    violation,
                });
            }
        }
        let mut child = world.clone();
        let record = child.step(transition);
        stats.transitions += 1;
        path.push(index as u32);
        stats.max_depth_seen = stats.max_depth_seen.max(path.len());
        for oracle in oracles {
            if let Err(violation) = oracle.check_step(&child, &record) {
                return Err(Counterexample {
                    trace: ScheduleTrace {
                        seed: 0,
                        decisions: path.clone(),
                    },
                    violation,
                });
            }
        }
        if seen.insert(child.state_hash()) {
            stats.states += 1;
            dfs(&child, oracles, config, seen, stats, path)?;
        }
        path.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::default_oracles;
    use crate::scenario;

    #[test]
    fn two_group_overlap_passes_exhaustively() {
        let outcome = explore(
            &scenario::two_group_overlap(),
            &default_oracles(),
            &ExploreConfig::default(),
        );
        match outcome {
            Outcome::Pass(stats) => {
                assert!(!stats.truncated, "space fits the default bounds");
                assert!(stats.terminals > 0, "reached terminal states");
                assert!(stats.states > stats.terminals as usize);
            }
            Outcome::Fail(cex) => panic!("unexpected violation: {} ({})", cex.violation, cex.trace),
        }
    }

    #[test]
    fn dedup_collapses_the_diamond() {
        // With dedup off (simulated by a huge bound and counting), states
        // must be strictly fewer than transitions: independent events
        // commute and rejoin.
        let outcome = explore(
            &scenario::two_group_overlap(),
            &default_oracles(),
            &ExploreConfig::default(),
        );
        let Outcome::Pass(stats) = outcome else {
            panic!("expected pass")
        };
        assert!(
            (stats.transitions as usize) > stats.states,
            "dedup pruned revisited states ({} transitions, {} states)",
            stats.transitions,
            stats.states
        );
    }

    #[test]
    fn sabotage_yields_a_counterexample() {
        let outcome = explore(
            &scenario::two_group_overlap().with_sabotaged_staging(),
            &default_oracles(),
            &ExploreConfig::default(),
        );
        let cex = outcome.counterexample().expect("sabotage must be caught");
        assert_eq!(cex.violation.invariant, "staged-output");
        assert_eq!(cex.trace.seed, 0);
        assert!(!cex.trace.is_empty());
    }

    #[test]
    fn state_cap_truncates_instead_of_diverging() {
        let outcome = explore(
            &scenario::case3_pairwise(),
            &default_oracles(),
            &ExploreConfig {
                max_depth: 64,
                max_states: 50,
            },
        );
        let Outcome::Pass(stats) = outcome else {
            panic!("bounded run still passes")
        };
        assert!(stats.truncated);
        assert!(stats.states <= 51);
    }
}
