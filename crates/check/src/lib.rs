//! `seqnet-check` — a deterministic schedule-exploring model checker over
//! the sans-I/O protocol cores.
//!
//! The paper's guarantees (Theorem 1 consistency, causal order for
//! self-subscribing publishers) are claims about *every* interleaving of
//! frame arrivals, crashes, and replays — not just the schedules the
//! discrete-event simulator happens to produce. This crate turns the
//! protocol cores ([`seqnet_core::proto::NodeCore`],
//! [`seqnet_core::proto::ReceiverCore`]) plus a FIFO-channel network model
//! into one explorable state space:
//!
//! * every command a core emits becomes a pending event on a per-channel
//!   FIFO queue, and the checker — not a clock — picks which pending event
//!   fires next ([`model::World`]);
//! * [`explore`] walks that space exhaustively (bounded DFS with
//!   state-digest deduplication) for small configurations;
//! * [`random`] drives seeded random walks with crash/restart injection
//!   (reusing [`seqnet_sim::FaultPlan`]) for larger ones;
//! * [`shrink`] minimizes a failing schedule to a short, replayable
//!   [`seqnet_sim::ScheduleTrace`] (seed + decision list) and re-executes
//!   it deterministically.
//!
//! Invariants are first-class pluggable oracles ([`invariants`]): pairwise
//! per-group delivery consistency (Theorem 1), causality for
//! self-subscribing publishers, no-loss/no-duplication across crash
//! windows, the group-commit staged-output rule (PROTOCOL.md §8), C1/C2
//! structural validity after `overlap::build`/`colocate`, and the batched
//! execution contract (PROTOCOL.md §12): on every explored edge the
//! `batch-vs-step` oracle re-executes the transition through the batched
//! core fast path and fails the run if it diverges from per-event
//! stepping — while the exploration itself keeps stepping the unbatched
//! semantics.
//!
//! The named configurations under [`scenario`] include the generalization
//! of the original ad-hoc `tests/model_check_case3.rs` sweep; the
//! `seqnet-check` binary runs the same scenarios offline with bigger
//! budgets. `PROTOCOL.md` §10 documents the event/decision model and how
//! to replay a counterexample.
//!
//! # Quickstart
//!
//! ```
//! use seqnet_check::{explore, invariants, scenario};
//!
//! let sc = scenario::two_group_overlap();
//! let outcome = explore::explore(&sc, &invariants::default_oracles(), &explore::ExploreConfig::default());
//! match outcome {
//!     explore::Outcome::Pass(stats) => assert!(stats.terminals > 0),
//!     explore::Outcome::Fail(cex) => panic!("counterexample: {}", cex.trace),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod invariants;
pub mod model;
pub mod random;
pub mod scenario;
pub mod shrink;

pub use explore::{explore, Counterexample, ExploreConfig, ExploreStats, Outcome};
pub use invariants::{default_oracles, BatchVsStep, Invariant, Violation};
pub use model::{StepRecord, Transition, World};
pub use random::{random_walks, RandomConfig};
pub use scenario::{Publish, Scenario};
pub use shrink::{replay, shrink, ReplayResult};
