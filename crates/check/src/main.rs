//! `seqnet-check` — run the model checker from the command line.
//!
//! ```text
//! seqnet-check --list
//! seqnet-check --all                          # exhaustive matrix, default bounds
//! seqnet-check --scenario case3-pairwise
//! seqnet-check --scenario disjoint-chain --mode random --seed 7 --walks 200
//! seqnet-check --scenario two-group-overlap --replay 'seed=0 decisions=[0,3,1]'
//! seqnet-check --all --trace-out /tmp/traces  # write counterexamples for CI upload
//! ```
//!
//! Exit codes: `0` all explored schedules pass, `1` a violation was found
//! (the shrunk, replayable trace is printed), `2` usage error.

use std::process::ExitCode;

use seqnet_check::explore::{explore, ExploreConfig, Outcome};
use seqnet_check::invariants::default_oracles;
use seqnet_check::random::{random_walks, scenario_for_walk, RandomConfig};
use seqnet_check::scenario::{self, Scenario};
use seqnet_check::shrink::{replay, replay_traced, shrink};
use seqnet_obs::span::TraceSet;
use seqnet_obs::FlightRecorder;
use seqnet_sim::ScheduleTrace;

struct Args {
    list: bool,
    all: bool,
    scenario: Option<String>,
    mode: Mode,
    seed: u64,
    walks: usize,
    max_steps: usize,
    max_depth: usize,
    max_states: usize,
    randomize_faults: bool,
    trace_out: Option<String>,
    replay: Option<String>,
}

#[derive(PartialEq)]
enum Mode {
    Exhaustive,
    Random,
}

fn usage() -> String {
    "usage: seqnet-check [--list] [--all | --scenario NAME]\n\
     \x20  [--mode exhaustive|random] [--seed N] [--walks N] [--max-steps N]\n\
     \x20  [--max-depth N] [--max-states N] [--randomize-faults]\n\
     \x20  [--replay 'seed=N decisions=[..]'] [--trace-out DIR]"
        .into()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        all: false,
        scenario: None,
        mode: Mode::Exhaustive,
        seed: 0,
        walks: 64,
        max_steps: 512,
        max_depth: ExploreConfig::default().max_depth,
        max_states: ExploreConfig::default().max_states,
        randomize_faults: false,
        trace_out: None,
        replay: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--all" => args.all = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "exhaustive" => Mode::Exhaustive,
                    "random" => Mode::Random,
                    other => return Err(format!("unknown mode {other}")),
                }
            }
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--walks" => args.walks = parse_num(&value("--walks")?)? as usize,
            "--max-steps" => args.max_steps = parse_num(&value("--max-steps")?)? as usize,
            "--max-depth" => args.max_depth = parse_num(&value("--max-depth")?)? as usize,
            "--max-states" => args.max_states = parse_num(&value("--max-states")?)? as usize,
            "--randomize-faults" => args.randomize_faults = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: {s}"))
}

fn selected_scenarios(args: &Args) -> Result<Vec<Scenario>, String> {
    if args.all {
        return Ok(scenario::registry());
    }
    match &args.scenario {
        Some(name) => scenario::by_name(name)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown scenario {name} (try --list)")),
        None => Err(format!("pick --all or --scenario NAME\n{}", usage())),
    }
}

fn write_trace(dir: &str, scenario: &Scenario, trace: &ScheduleTrace) {
    let _ = std::fs::create_dir_all(dir);
    let path = format!("{dir}/{}.trace", scenario.name.replace('/', "_"));
    if let Err(e) = std::fs::write(&path, format!("{trace}\n")) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("counterexample trace written to {path}");
    }
}

/// Replays the shrunk counterexample once more through a flight recorder
/// and writes the structured event trace next to the decision trace, so a
/// CI failure ships the full causal story (who stamped, forwarded,
/// buffered what), not just the decision indices.
fn write_events(
    dir: &str,
    concrete: &Scenario,
    scenario_name: &str,
    trace: &ScheduleTrace,
) {
    let _ = std::fs::create_dir_all(dir);
    let mut recorder = FlightRecorder::new(65_536);
    let oracles = default_oracles();
    replay_traced(concrete, &oracles, &trace.decisions, &mut recorder);
    let path = format!("{dir}/{}.events.jsonl", scenario_name.replace('/', "_"));
    if let Err(e) = std::fs::write(&path, recorder.dump_jsonl()) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("event trace written to {path} ({} events)", recorder.seen());
    }
    if recorder.dropped_events() > 0 {
        eprintln!(
            "warning: flight recorder overflowed; {} early event(s) were dropped \
             and the span trees below may be incomplete",
            recorder.dropped_events()
        );
    }

    // Reconstruct per-message span trees from the same replay: the
    // messages the violation left incomplete (undelivered, unstamped)
    // are usually the counterexample's protagonists, so render those
    // first, then the slowest completed delivery for timing context.
    let events: Vec<_> = recorder.events().cloned().collect();
    let set = TraceSet::with_dropped(&events, recorder.dropped_events());
    let mut rendered = String::new();
    for trace in set.traces().filter(|t| !t.is_complete()).take(8) {
        rendered.push_str(&trace.render());
        rendered.push('\n');
    }
    if let Some((trace, _)) = set.slowest(1).into_iter().next() {
        rendered.push_str(&trace.render());
        rendered.push('\n');
    }
    if rendered.is_empty() {
        return;
    }
    let spans_path = format!("{dir}/{}.spans.txt", scenario_name.replace('/', "_"));
    if let Err(e) = std::fs::write(&spans_path, &rendered) {
        eprintln!("warning: could not write {spans_path}: {e}");
    } else {
        println!("span trees written to {spans_path}");
    }
    print!("{rendered}");
}

/// Checks one scenario; returns `true` on pass.
fn check_scenario(args: &Args, sc: &Scenario) -> bool {
    let oracles = default_oracles();
    let outcome = match args.mode {
        Mode::Exhaustive => explore(
            sc,
            &oracles,
            &ExploreConfig {
                max_depth: args.max_depth,
                max_states: args.max_states,
            },
        ),
        Mode::Random => random_walks(
            sc,
            &oracles,
            args.seed,
            &RandomConfig {
                walks: args.walks,
                max_steps: args.max_steps,
                randomize_faults: args.randomize_faults,
            },
        ),
    };
    match outcome {
        Outcome::Pass(stats) => {
            println!(
                "PASS {}: {} states, {} transitions, {} terminals{}",
                sc.name,
                stats.states,
                stats.transitions,
                stats.terminals,
                if stats.truncated { " (truncated)" } else { "" }
            );
            true
        }
        Outcome::Fail(cex) => {
            println!("FAIL {}: {}", sc.name, cex.violation);
            // Re-derive the concrete scenario a random walk ran (its seed
            // selects the fault plan), then shrink within it.
            let concrete = if args.mode == Mode::Random {
                scenario_for_walk(
                    sc,
                    cex.trace.seed,
                    &RandomConfig {
                        walks: args.walks,
                        max_steps: args.max_steps,
                        randomize_faults: args.randomize_faults,
                    },
                )
            } else {
                sc.clone()
            };
            let shrunk = shrink(&concrete, &oracles, &cex.trace);
            println!("  original: {}", cex.trace);
            println!("  shrunk:   {shrunk}");
            let res = replay(&concrete, &oracles, &shrunk.decisions);
            print!("{}", indent(&res.log));
            if let Some(dir) = &args.trace_out {
                write_trace(dir, sc, &shrunk);
                write_events(dir, &concrete, &sc.name, &shrunk);
            }
            false
        }
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if args.list {
        for sc in scenario::registry() {
            println!(
                "{:32} {} publishes, {} crash windows{}{}",
                sc.name,
                sc.publishes.len(),
                sc.plan.crash_windows().len(),
                if sc.group_commit { ", group-commit" } else { "" },
                if sc.sabotage_unstaged { ", sabotaged" } else { "" },
            );
        }
        return Ok(true);
    }

    if let Some(text) = &args.replay {
        let trace = ScheduleTrace::parse(text)
            .ok_or_else(|| format!("unparseable trace: {text}"))?;
        let scenarios = selected_scenarios(&args)?;
        let sc = scenarios
            .first()
            .ok_or_else(|| "replay needs a scenario".to_string())?;
        let oracles = default_oracles();
        let res = replay(sc, &oracles, &trace.decisions);
        print!("{}", res.log);
        return Ok(!res.failed());
    }

    let mut all_pass = true;
    for sc in selected_scenarios(&args)? {
        if !check_scenario(&args, &sc) {
            all_pass = false;
        }
    }
    Ok(all_pass)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
