//! Token-based total-order baseline (Totem-style, simplified).
//!
//! In sender-based protocols "the sender can multicast a message only when
//! granted the privilege, i.e., when it holds a token" (paper §2). A token
//! circulates the nodes in ring order; a node holding the token flushes
//! its pending publications (each implicitly globally ordered by flush
//! time) and passes the token on. The paper's criticism — "token-based
//! protocols introduce long delays when nodes must wait for the token" —
//! is directly measurable here as the publish-to-flush wait.

use seqnet_core::{CoreError, DeliveryRecord, MessageId};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_sim::{SimTime, Simulator};
use std::collections::{BTreeMap, HashMap, VecDeque};

#[derive(Debug)]
struct TokenWorld {
    membership: Membership,
    ring: Vec<NodeId>,
    hop: SimTime,
    rotation: SimTime,
    pending: HashMap<NodeId, VecDeque<(MessageId, GroupId)>>,
    publish_time: HashMap<MessageId, SimTime>,
    deliveries: BTreeMap<NodeId, Vec<DeliveryRecord>>,
    next_id: u64,
    token_holder: usize,
    rotations: u64,
    total_token_wait: SimTime,
    flushed: u64,
}

/// A pub/sub system totally ordered by a circulating token.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_baseline::TokenRing;
/// use seqnet_sim::SimTime;
///
/// let m = Membership::from_groups([(GroupId(0), vec![NodeId(0), NodeId(1)])]);
/// let mut ring = TokenRing::new(&m, SimTime::from_ms(1.0), SimTime::from_ms(2.0));
/// ring.publish(NodeId(1), GroupId(0), b"held until the token arrives")?;
/// ring.run_to_quiescence();
/// assert_eq!(ring.delivered(NodeId(0)).len(), 1);
/// assert!(ring.mean_token_wait() > SimTime::ZERO);
/// # Ok::<(), seqnet_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct TokenRing {
    sim: Simulator<TokenWorld>,
    started: bool,
}

impl TokenRing {
    /// Creates a ring over all subscribing nodes of `membership`.
    ///
    /// `hop` is the delivery delay from a publisher to each subscriber;
    /// `rotation` the token-passing delay between ring neighbors.
    pub fn new(membership: &Membership, hop: SimTime, rotation: SimTime) -> Self {
        let ring: Vec<NodeId> = membership.nodes().collect();
        TokenRing {
            sim: Simulator::new(TokenWorld {
                membership: membership.clone(),
                ring,
                hop,
                rotation,
                pending: HashMap::new(),
                publish_time: HashMap::new(),
                deliveries: BTreeMap::new(),
                next_id: 0,
                token_holder: 0,
                rotations: 0,
                total_token_wait: SimTime::ZERO,
                flushed: 0,
            }),
            started: false,
        }
    }

    /// Queues a publication; it is sent when the token reaches the sender.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group has no members and
    /// [`CoreError::UnknownNode`] if the sender is not on the ring.
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload: impl AsRef<[u8]>,
    ) -> Result<MessageId, CoreError> {
        let _ = payload;
        let now = self.sim.now();
        let world = self.sim.world_mut();
        if world.membership.group_size(group) == 0 {
            return Err(CoreError::UnknownGroup(group));
        }
        if !world.ring.contains(&sender) {
            return Err(CoreError::UnknownNode(sender));
        }
        let id = MessageId(world.next_id);
        world.next_id += 1;
        world.publish_time.insert(id, now);
        world.pending.entry(sender).or_default().push_back((id, group));
        if !self.started {
            self.started = true;
            self.sim.schedule_at(now, token_arrives);
        }
        Ok(id)
    }

    /// Runs until every queued message has been flushed and delivered.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.sim.run_to_quiescence()
    }

    /// Deliveries at `node` in delivery order.
    pub fn delivered(&self, node: NodeId) -> &[DeliveryRecord] {
        self.sim
            .world()
            .deliveries
            .get(&node)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates all delivery records.
    pub fn all_deliveries(&self) -> impl Iterator<Item = &DeliveryRecord> {
        self.sim.world().deliveries.values().flatten()
    }

    /// Token passes performed.
    pub fn rotations(&self) -> u64 {
        self.sim.world().rotations
    }

    /// Mean time a message waited for the token before being sent — the
    /// delay the paper criticizes token protocols for.
    pub fn mean_token_wait(&self) -> SimTime {
        let world = self.sim.world();
        world
            .total_token_wait
            .as_micros()
            .checked_div(world.flushed)
            .map(SimTime::from_micros)
            .unwrap_or(SimTime::ZERO)
    }
}

/// Event: the token reaches the current holder; flush and pass on.
fn token_arrives(sim: &mut Simulator<TokenWorld>) {
    let now = sim.now();
    let world = sim.world_mut();
    let holder = world.ring[world.token_holder];

    // Flush the holder's queue: messages become globally ordered now.
    let queue = world.pending.remove(&holder).unwrap_or_default();
    let mut sends: Vec<(SimTime, MessageId, GroupId, Vec<NodeId>)> = Vec::new();
    for (id, group) in queue {
        let published = world.publish_time[&id];
        world.total_token_wait += now - published;
        world.flushed += 1;
        let members: Vec<NodeId> = world.membership.members(group).collect();
        sends.push((now + world.hop, id, group, members));
    }
    for (arrival, id, group, members) in sends {
        for member in members {
            sim.schedule_at(arrival, move |sim| {
                let now = sim.now();
                let world = sim.world_mut();
                let published = world.publish_time[&id];
                let record = DeliveryRecord {
                    id,
                    sender: NodeId(u32::MAX), // the ring hides the sender's position
                    group,
                    destination: member,
                    published,
                    arrived: now,
                    delivered: now,
                    unicast: world.hop,
                    stamps: 0,
                    epoch: 0,
                    payload: bytes::Bytes::new(),
                };
                world.deliveries.entry(member).or_default().push(record);
            });
        }
    }

    // Pass the token while work remains anywhere.
    let world = sim.world_mut();
    if world.pending.values().any(|q| !q.is_empty()) {
        world.token_holder = (world.token_holder + 1) % world.ring.len();
        world.rotations += 1;
        let rotation = world.rotation;
        sim.schedule_in(rotation, token_arrives);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn everything_delivered_in_total_order() {
        let mut ring = TokenRing::new(&membership(), SimTime::from_ms(1.0), SimTime::from_ms(2.0));
        for i in 0..8u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            ring.publish(s, grp, []).unwrap();
        }
        ring.run_to_quiescence();
        assert_eq!(ring.delivered(n(1)).len(), 8);
        let o1: Vec<_> = ring.delivered(n(1)).iter().map(|d| d.id).collect();
        let o2: Vec<_> = ring.delivered(n(2)).iter().map(|d| d.id).collect();
        assert_eq!(o1, o2);
    }

    #[test]
    fn token_wait_grows_with_ring_distance() {
        // Node 3 is three hops of rotation away from the initial holder.
        let m = membership();
        let mut ring = TokenRing::new(&m, SimTime::from_ms(1.0), SimTime::from_ms(5.0));
        ring.publish(n(3), g(1), []).unwrap();
        ring.run_to_quiescence();
        // Token starts at ring[0] = n0: three rotations of 5 ms to reach n3.
        assert_eq!(ring.rotations(), 3);
        assert_eq!(ring.mean_token_wait(), SimTime::from_ms(15.0));
    }

    #[test]
    fn holder_publishes_immediately() {
        let m = membership();
        let mut ring = TokenRing::new(&m, SimTime::from_ms(1.0), SimTime::from_ms(5.0));
        // Ring starts at n0.
        ring.publish(n(0), g(0), []).unwrap();
        ring.run_to_quiescence();
        assert_eq!(ring.mean_token_wait(), SimTime::ZERO);
        assert_eq!(ring.rotations(), 0);
    }

    #[test]
    fn unknown_group_and_node_rejected() {
        let mut ring = TokenRing::new(&membership(), SimTime::from_ms(1.0), SimTime::from_ms(1.0));
        assert!(ring.publish(n(0), g(9), []).is_err());
        assert!(ring.publish(n(9), g(0), []).is_err());
    }

    #[test]
    fn token_ring_slower_than_decentralized_sequencing() {
        // The §2 criticism quantified: same workload, same hop delay; the
        // token's rotation dominates latency.
        let m = membership();
        let mut ring = TokenRing::new(&m, SimTime::from_ms(1.0), SimTime::from_ms(5.0));
        let mut bus = seqnet_core::OrderedPubSub::with_uniform_delay(&m, SimTime::from_ms(1.0));
        for i in 0..6u32 {
            let (s, grp) = if i % 2 == 0 { (n(3), g(1)) } else { (n(1), g(0)) };
            ring.publish(s, grp, []).unwrap();
            bus.publish(s, grp, vec![]).unwrap();
        }
        ring.run_to_quiescence();
        bus.run_to_quiescence();
        let mean = |records: Vec<&DeliveryRecord>| -> f64 {
            let sum: f64 = records
                .iter()
                .map(|d| (d.delivered - d.published).as_ms())
                .sum();
            sum / records.len() as f64
        };
        let ring_latency = mean(ring.all_deliveries().collect());
        let seq_latency = mean(bus.all_deliveries().collect());
        assert!(
            ring_latency > seq_latency,
            "token ring {ring_latency}ms should exceed sequencing {seq_latency}ms"
        );
    }
}
