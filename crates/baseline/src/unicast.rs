//! Direct unicast delivery — no ordering, shortest paths only.

use seqnet_core::NetworkSetup;
use seqnet_membership::NodeId;
use seqnet_sim::SimTime;
use seqnet_topology::{DelayOracle, HostId};

/// Shortest-path sender-to-destination delays: the reference the paper
/// divides by when computing latency stretch ("the time taken using the
/// direct unicast path", §4.2).
///
/// # Example
///
/// ```
/// use seqnet_baseline::DirectUnicast;
/// use seqnet_core::NetworkSetup;
/// use seqnet_membership::NodeId;
/// use seqnet_topology::TransitStubParams;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let setup = NetworkSetup::generate(&TransitStubParams::small(), 8, 4, &mut rng);
/// let unicast = DirectUnicast::new(&setup);
/// let d = unicast.delay(NodeId(0), NodeId(7));
/// assert!(d > seqnet_sim::SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DirectUnicast {
    delays: Vec<Vec<SimTime>>,
}

impl DirectUnicast {
    /// Precomputes all pairwise host delays of a setup.
    #[allow(clippy::needless_range_loop)] // indexed form reads clearer here
    pub fn new(setup: &NetworkSetup) -> Self {
        let n = setup.hosts.num_hosts();
        let mut oracle = DelayOracle::new(&setup.topology.graph);
        let mut delays = vec![vec![SimTime::ZERO; n]; n];
        for a in 0..n {
            for b in 0..n {
                let d = oracle.host_delay(&setup.hosts, HostId(a as u32), HostId(b as u32));
                delays[a][b] = SimTime::from_micros(d.as_micros());
            }
        }
        DirectUnicast { delays }
    }

    /// Direct delay from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either host id is out of range.
    pub fn delay(&self, a: NodeId, b: NodeId) -> SimTime {
        self.delays[a.index()][b.index()]
    }

    /// The time for `sender` to reach every destination directly; the
    /// slowest pair dominates an unordered "broadcast".
    pub fn fanout_delays<'a>(
        &'a self,
        sender: NodeId,
        destinations: impl IntoIterator<Item = NodeId> + 'a,
    ) -> impl Iterator<Item = (NodeId, SimTime)> + 'a {
        destinations
            .into_iter()
            .map(move |d| (d, self.delay(sender, d)))
    }

    /// Number of hosts covered.
    pub fn num_hosts(&self) -> usize {
        self.delays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use seqnet_topology::TransitStubParams;

    fn setup() -> NetworkSetup {
        let mut rng = StdRng::seed_from_u64(5);
        NetworkSetup::generate(&TransitStubParams::small(), 10, 5, &mut rng)
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let u = DirectUnicast::new(&setup());
        assert_eq!(u.num_hosts(), 10);
        for a in 0..10u32 {
            assert_eq!(u.delay(NodeId(a), NodeId(a)), SimTime::ZERO);
            for b in 0..10u32 {
                assert_eq!(u.delay(NodeId(a), NodeId(b)), u.delay(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn fanout_covers_all_destinations() {
        let u = DirectUnicast::new(&setup());
        let dests: Vec<NodeId> = (1..10).map(NodeId).collect();
        let fan: Vec<_> = u.fanout_delays(NodeId(0), dests.iter().copied()).collect();
        assert_eq!(fan.len(), 9);
        // Delays match the pairwise table exactly.
        for (dest, d) in fan {
            assert_eq!(d, u.delay(NodeId(0), dest));
        }
    }

    #[test]
    fn clustered_hosts_are_close() {
        // Hosts 0-4 share a cluster; cross-cluster delays are larger on
        // average.
        let u = DirectUnicast::new(&setup());
        let intra: u64 = (1..5).map(|b| u.delay(NodeId(0), NodeId(b)).as_micros()).sum();
        let cross: u64 = (5..9).map(|b| u.delay(NodeId(0), NodeId(b)).as_micros()).sum();
        assert!(intra < cross, "intra {intra} < cross {cross}");
    }
}
