//! Propagation-tree ordered multicast (Garcia-Molina & Spauster, ACM TOCS
//! 1991) — the related work the paper calls its closest ancestor (§2):
//! "they order messages as they deliver them through a tree of subscriber
//! nodes... The graph is arranged so that messages are sequenced by the
//! destination nodes that subscribe to the most groups, and the task of
//! sequencing messages is overlapped with distribution."
//!
//! This implementation follows that shape: subscriber nodes form a
//! propagation tree rooted at the node with the most subscriptions; a
//! message is sent to the root, which assigns the order and pushes it down
//! FIFO tree links; every node forwards to the children whose subtrees
//! contain members of the destination group and delivers locally when
//! subscribed. Sequencing is thus overlapped with distribution and done by
//! *destination nodes* — the design seqnet decouples into sequencing atoms
//! plus a separate delivery tree.

use seqnet_core::{CoreError, DeliveryRecord, MessageId};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_sim::{SimTime, Simulator};
use std::collections::{BTreeMap, BTreeSet, HashMap};

#[derive(Debug)]
struct TreeWorld {
    membership: Membership,
    /// Children of each tree node.
    children: BTreeMap<NodeId, Vec<NodeId>>,
    /// For each node and group: does the subtree rooted there contain a
    /// member of the group?
    subtree_has: HashMap<(NodeId, GroupId), bool>,
    root: NodeId,
    hop: SimTime,
    global_seq: u64,
    publish_time: HashMap<MessageId, SimTime>,
    deliveries: BTreeMap<NodeId, Vec<DeliveryRecord>>,
    /// Messages each subscriber node forwarded for others — the
    /// sequencing-overlapped-with-distribution load G-M puts on
    /// destination nodes.
    forward_load: BTreeMap<NodeId, u64>,
    next_id: u64,
}

/// The Garcia-Molina/Spauster-style baseline: a single propagation tree of
/// subscriber nodes, rooted at the most-subscribed node, ordering messages
/// while distributing them.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_baseline::PropagationTree;
/// use seqnet_sim::SimTime;
///
/// let m = Membership::from_groups([
///     (GroupId(0), vec![NodeId(0), NodeId(1)]),
///     (GroupId(1), vec![NodeId(1), NodeId(2)]),
/// ]);
/// let mut tree = PropagationTree::new(&m, SimTime::from_ms(1.0));
/// tree.publish(NodeId(0), GroupId(0))?;
/// tree.run_to_quiescence();
/// assert_eq!(tree.delivered(NodeId(1)).len(), 1);
/// # Ok::<(), seqnet_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct PropagationTree {
    sim: Simulator<TreeWorld>,
}

impl PropagationTree {
    /// Builds the tree over all subscribers of `membership`: the root is
    /// the node with the most subscriptions (G-M sequence messages at the
    /// nodes that subscribe to the most groups); remaining nodes attach
    /// under the already-placed node with the largest subscription
    /// intersection, keeping group members clustered in subtrees.
    pub fn new(membership: &Membership, hop: SimTime) -> Self {
        let mut nodes: Vec<NodeId> = membership.nodes().collect();
        // Most-subscribed first; ties by id for determinism.
        nodes.sort_by_key(|&n| (std::cmp::Reverse(membership.groups_of(n).count()), n));

        let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let root = nodes.first().copied().unwrap_or(NodeId(0));
        for (i, &node) in nodes.iter().enumerate().skip(1) {
            let groups: BTreeSet<GroupId> = membership.groups_of(node).collect();
            // Attach under the placed node sharing the most groups.
            let best = nodes[..i]
                .iter()
                .copied()
                .max_by_key(|&placed| {
                    let overlap = membership
                        .groups_of(placed)
                        .filter(|g| groups.contains(g))
                        .count();
                    (overlap, std::cmp::Reverse(placed.0))
                })
                .expect("at least the root is placed");
            children.entry(best).or_default().push(node);
            parent.insert(node, best);
        }

        // subtree_has via post-order accumulation.
        let mut subtree_has: HashMap<(NodeId, GroupId), bool> = HashMap::new();
        let groups: Vec<GroupId> = membership.groups().collect();
        // Process nodes in reverse placement order (children before
        // parents is guaranteed because a child is always placed after
        // its parent).
        for &node in nodes.iter().rev() {
            for &g in &groups {
                let mine = membership.is_member(node, g);
                let kids = children
                    .get(&node)
                    .map(|ks| {
                        ks.iter()
                            .any(|k| subtree_has.get(&(*k, g)).copied().unwrap_or(false))
                    })
                    .unwrap_or(false);
                subtree_has.insert((node, g), mine || kids);
            }
        }

        PropagationTree {
            sim: Simulator::new(TreeWorld {
                membership: membership.clone(),
                children,
                subtree_has,
                root,
                hop,
                global_seq: 0,
                publish_time: HashMap::new(),
                deliveries: BTreeMap::new(),
                forward_load: BTreeMap::new(),
                next_id: 0,
            }),
        }
    }

    /// Publishes: the message travels to the root, gets its order, and
    /// propagates down.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group has no members.
    pub fn publish(&mut self, sender: NodeId, group: GroupId) -> Result<MessageId, CoreError> {
        let now = self.sim.now();
        let world = self.sim.world_mut();
        if world.membership.group_size(group) == 0 {
            return Err(CoreError::UnknownGroup(group));
        }
        let id = MessageId(world.next_id);
        world.next_id += 1;
        world.publish_time.insert(id, now);
        let root = world.root;
        let hop = world.hop;
        // Sender to root: one FIFO hop (abstracting the ingress path).
        self.sim.schedule_at(now + hop, move |sim| {
            at_tree_node(sim, id, sender, group, root);
        });
        Ok(id)
    }

    /// Runs until idle.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.sim.run_to_quiescence()
    }

    /// Deliveries at `node` in delivery order.
    pub fn delivered(&self, node: NodeId) -> &[DeliveryRecord] {
        self.sim
            .world()
            .deliveries
            .get(&node)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates all delivery records.
    pub fn all_deliveries(&self) -> impl Iterator<Item = &DeliveryRecord> {
        self.sim.world().deliveries.values().flatten()
    }

    /// Messages each subscriber node forwarded on behalf of others — the
    /// load G-M's design places on destination nodes and seqnet moves to
    /// dedicated sequencing atoms.
    pub fn forward_loads(&self) -> &BTreeMap<NodeId, u64> {
        &self.sim.world().forward_load
    }

    /// The tree root (the busiest possible node: it sees every message).
    pub fn root(&self) -> NodeId {
        self.sim.world().root
    }
}

/// Event: a message reaches a tree node, which delivers locally (if
/// subscribed), forwards to interested subtrees, and counts the load.
fn at_tree_node(
    sim: &mut Simulator<TreeWorld>,
    id: MessageId,
    sender: NodeId,
    group: GroupId,
    node: NodeId,
) {
    let now = sim.now();
    let world = sim.world_mut();
    if node == world.root {
        world.global_seq += 1; // the root fixes the total order
    }
    *world.forward_load.entry(node).or_insert(0) += 1;

    if world.membership.is_member(node, group) {
        let published = world.publish_time[&id];
        let record = DeliveryRecord {
            id,
            sender,
            group,
            destination: node,
            published,
            arrived: now,
            delivered: now,
            unicast: world.hop,
            stamps: 1,
            epoch: 0,
            payload: bytes::Bytes::new(),
        };
        world.deliveries.entry(node).or_default().push(record);
    }

    let hop = world.hop;
    let next: Vec<NodeId> = world
        .children
        .get(&node)
        .map(|kids| {
            kids.iter()
                .copied()
                .filter(|k| world.subtree_has.get(&(*k, group)).copied().unwrap_or(false))
                .collect()
        })
        .unwrap_or_default();
    for child in next {
        sim.schedule_at(now + hop, move |sim| {
            at_tree_node(sim, id, sender, group, child);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
            (g(2), vec![n(2), n(4)]),
        ])
    }

    #[test]
    fn root_is_the_most_subscribed_node() {
        let tree = PropagationTree::new(&membership(), SimTime::from_ms(1.0));
        assert_eq!(tree.root(), n(2), "n2 subscribes to all three groups");
    }

    #[test]
    fn everyone_receives_their_groups() {
        let mut tree = PropagationTree::new(&membership(), SimTime::from_ms(1.0));
        for i in 0..9u32 {
            let grp = g(i % 3);
            let m = membership();
            let sender = m.members(grp).next().unwrap();
            tree.publish(sender, grp).unwrap();
        }
        tree.run_to_quiescence();
        assert_eq!(tree.delivered(n(0)).len(), 3);
        assert_eq!(tree.delivered(n(1)).len(), 6);
        assert_eq!(tree.delivered(n(2)).len(), 9);
        assert_eq!(tree.delivered(n(4)).len(), 3);
    }

    #[test]
    fn overlap_members_agree_on_order() {
        let mut tree = PropagationTree::new(&membership(), SimTime::from_ms(1.0));
        for i in 0..10u32 {
            let grp = g(i % 2);
            tree.publish(n(0), grp).unwrap();
        }
        tree.run_to_quiescence();
        let o1: Vec<_> = tree.delivered(n(1)).iter().map(|d| d.id).collect();
        let o2: Vec<_> = tree.delivered(n(2)).iter().map(|d| d.id).collect();
        let c1: Vec<_> = o1.iter().filter(|x| o2.contains(x)).collect();
        let c2: Vec<_> = o2.iter().filter(|x| o1.contains(x)).collect();
        assert_eq!(c1, c2);
        assert_eq!(o1.len(), 10);
    }

    #[test]
    fn root_carries_every_message() {
        // The G-M shape the paper improves on: the most-subscribed
        // destination node sequences (and forwards) *all* traffic.
        let mut tree = PropagationTree::new(&membership(), SimTime::from_ms(1.0));
        for i in 0..12u32 {
            let grp = g(i % 3);
            let m = membership();
            let sender = m.members(grp).next().unwrap();
            tree.publish(sender, grp).unwrap();
        }
        tree.run_to_quiescence();
        assert_eq!(tree.forward_loads()[&tree.root()], 12);
    }

    #[test]
    fn unknown_group_rejected() {
        let mut tree = PropagationTree::new(&membership(), SimTime::from_ms(1.0));
        assert!(tree.publish(n(0), g(9)).is_err());
    }

    #[test]
    fn subtree_pruning_skips_uninterested_branches() {
        // g2 = {n2, n4}: messages to g2 must not reach n0/n1/n3's load.
        let mut tree = PropagationTree::new(&membership(), SimTime::from_ms(1.0));
        tree.publish(n(4), g(2)).unwrap();
        tree.run_to_quiescence();
        let loads = tree.forward_loads();
        let touched: Vec<NodeId> = loads.keys().copied().collect();
        for node in touched {
            assert!(
                node == tree.root()
                    || membership().is_member(node, g(2))
                    || loads[&node] == 0,
                "{node} handled a g2 message without interest"
            );
        }
    }
}
