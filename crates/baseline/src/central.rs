//! The centralized-sequencer baseline.

use seqnet_core::{CoreError, DeliveryRecord, MessageId, NetworkSetup};
use seqnet_membership::{GroupId, Membership, NodeId};
use seqnet_sim::{FifoStamper, SimTime, Simulator};
use seqnet_topology::{DelayOracle, HostId, RouterId};
use std::collections::{BTreeMap, HashMap};

/// Propagation delays for the centralized deployment.
#[derive(Debug, Clone)]
pub enum CentralDelays {
    /// Constant hop delay between any two distinct parties.
    Uniform(SimTime),
    /// Topology-backed: the sequencer sits on a router; hosts are attached
    /// per the setup's host map.
    Table {
        /// Host-to-sequencer delay, indexed by node id.
        to_seq: Vec<SimTime>,
        /// Host-to-host delays, indexed `[a][b]`, for the unicast
        /// reference.
        host_host: Vec<Vec<SimTime>>,
    },
}

impl CentralDelays {
    /// Builds topology-backed delays for a sequencer placed on `router`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected.
    #[allow(clippy::needless_range_loop)] // indexed form reads clearer here
    pub fn on_network(setup: &NetworkSetup, router: RouterId) -> Self {
        let n = setup.hosts.num_hosts();
        let mut oracle = DelayOracle::new(&setup.topology.graph);
        let to_seq = (0..n)
            .map(|i| {
                let d = oracle.router_delay(setup.hosts.router_of(HostId(i as u32)), router);
                SimTime::from_micros(d.as_micros())
            })
            .collect();
        let mut host_host = vec![vec![SimTime::ZERO; n]; n];
        for a in 0..n {
            for b in 0..n {
                let d = oracle.host_delay(&setup.hosts, HostId(a as u32), HostId(b as u32));
                host_host[a][b] = SimTime::from_micros(d.as_micros());
            }
        }
        CentralDelays::Table { to_seq, host_host }
    }

    fn host_to_seq(&self, host: NodeId) -> SimTime {
        match self {
            CentralDelays::Uniform(d) => *d,
            CentralDelays::Table { to_seq, .. } => to_seq[host.index()],
        }
    }

    fn host_to_host(&self, a: NodeId, b: NodeId) -> SimTime {
        match self {
            CentralDelays::Uniform(d) => {
                if a == b {
                    SimTime::ZERO
                } else {
                    *d
                }
            }
            CentralDelays::Table { host_host, .. } => host_host[a.index()][b.index()],
        }
    }
}

#[derive(Debug)]
struct CentralWorld {
    membership: Membership,
    delays: CentralDelays,
    fifo: FifoStamper<(u8, NodeId)>, // (0 = host→seq, 1 = seq→host)
    next_id: u64,
    global_seq: u64,
    sequencer_load: u64,
    publish_time: HashMap<MessageId, SimTime>,
    deliveries: BTreeMap<NodeId, Vec<DeliveryRecord>>,
}

/// A pub/sub system ordered by one central sequencer: every message from
/// every publisher funnels through a single machine, which assigns a global
/// total order and fans out to the destination group.
///
/// Used by the `load_vs_central` experiment to reproduce the paper's
/// scalability argument: the sequencer processes *every* message, whereas
/// the decentralized scheme bounds each sequencing node's load by the most
/// loaded receiver.
///
/// # Example
///
/// ```
/// use seqnet_membership::{Membership, NodeId, GroupId};
/// use seqnet_baseline::{CentralSequencer, CentralDelays};
/// use seqnet_sim::SimTime;
///
/// let m = Membership::from_groups([(GroupId(0), vec![NodeId(0), NodeId(1)])]);
/// let mut bus = CentralSequencer::new(&m, CentralDelays::Uniform(SimTime::from_ms(1.0)));
/// bus.publish(NodeId(0), GroupId(0), 8)?;
/// bus.run_to_quiescence();
/// assert_eq!(bus.sequencer_load(), 1);
/// assert_eq!(bus.delivered(NodeId(1)).len(), 1);
/// # Ok::<(), seqnet_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct CentralSequencer {
    sim: Simulator<CentralWorld>,
}

impl CentralSequencer {
    /// Creates the system over `membership` with the given delay model.
    pub fn new(membership: &Membership, delays: CentralDelays) -> Self {
        CentralSequencer {
            sim: Simulator::new(CentralWorld {
                membership: membership.clone(),
                delays,
                fifo: FifoStamper::new(),
                next_id: 0,
                global_seq: 0,
                sequencer_load: 0,
                publish_time: HashMap::new(),
                deliveries: BTreeMap::new(),
            }),
        }
    }

    /// Publishes a message of `payload_bytes` size at the current time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] if the group has no members.
    pub fn publish(
        &mut self,
        sender: NodeId,
        group: GroupId,
        payload_bytes: usize,
    ) -> Result<MessageId, CoreError> {
        let _ = payload_bytes;
        let world = self.sim.world_mut();
        if world.membership.group_size(group) == 0 {
            return Err(CoreError::UnknownGroup(group));
        }
        let id = MessageId(world.next_id);
        world.next_id += 1;
        let now = self.sim.now();
        let world = self.sim.world_mut();
        world.publish_time.insert(id, now);
        let delay = world.delays.host_to_seq(sender);
        let arrival = world.fifo.arrival((0, sender), now, delay);
        self.sim.schedule_at(arrival, move |sim| {
            at_sequencer(sim, id, sender, group);
        });
        Ok(id)
    }

    /// Runs until idle; returns events executed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.sim.run_to_quiescence()
    }

    /// Messages the central sequencer has processed — its load.
    pub fn sequencer_load(&self) -> u64 {
        self.sim.world().sequencer_load
    }

    /// Deliveries at `node` in delivery order.
    pub fn delivered(&self, node: NodeId) -> &[DeliveryRecord] {
        self.sim
            .world()
            .deliveries
            .get(&node)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates all delivery records.
    pub fn all_deliveries(&self) -> impl Iterator<Item = &DeliveryRecord> {
        self.sim.world().deliveries.values().flatten()
    }
}

fn at_sequencer(sim: &mut Simulator<CentralWorld>, id: MessageId, sender: NodeId, group: GroupId) {
    let now = sim.now();
    let world = sim.world_mut();
    world.sequencer_load += 1;
    world.global_seq += 1;
    let members: Vec<NodeId> = world.membership.members(group).collect();
    let sends: Vec<(SimTime, NodeId)> = members
        .into_iter()
        .map(|member| {
            let delay = world.delays.host_to_seq(member); // symmetric path
            let arrival = world.fifo.arrival((1, member), now, delay);
            (arrival, member)
        })
        .collect();
    for (arrival, member) in sends {
        sim.schedule_at(arrival, move |sim| {
            let now = sim.now();
            let world = sim.world_mut();
            let published = world.publish_time[&id];
            let unicast = world.delays.host_to_host(sender, member);
            // The sequencer→member channel is FIFO and the sequencer
            // totally orders messages, so arrival order is delivery order.
            let record = DeliveryRecord {
                id,
                sender,
                group,
                destination: member,
                published,
                arrived: now,
                delivered: now,
                unicast,
                stamps: 1,
                epoch: 0,
                payload: bytes::Bytes::new(),
            };
            world.deliveries.entry(member).or_default().push(record);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use seqnet_topology::TransitStubParams;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn g(i: u32) -> GroupId {
        GroupId(i)
    }

    fn membership() -> Membership {
        Membership::from_groups([
            (g(0), vec![n(0), n(1), n(2)]),
            (g(1), vec![n(1), n(2), n(3)]),
        ])
    }

    #[test]
    fn sequencer_sees_every_message() {
        let mut bus = CentralSequencer::new(&membership(), CentralDelays::Uniform(SimTime::from_ms(1.0)));
        for i in 0..6u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            bus.publish(s, grp, 16).unwrap();
        }
        bus.run_to_quiescence();
        assert_eq!(bus.sequencer_load(), 6, "central sequencer processes all traffic");
        assert_eq!(bus.delivered(n(1)).len(), 6);
        assert_eq!(bus.delivered(n(0)).len(), 3);
    }

    #[test]
    fn overlap_members_agree_on_order() {
        let mut bus = CentralSequencer::new(&membership(), CentralDelays::Uniform(SimTime::from_ms(1.0)));
        for i in 0..10u32 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            bus.publish(s, grp, 0).unwrap();
        }
        bus.run_to_quiescence();
        let o1: Vec<_> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
        let o2: Vec<_> = bus.delivered(n(2)).iter().map(|d| d.id).collect();
        assert_eq!(o1, o2);
    }

    #[test]
    fn unknown_group_rejected() {
        let mut bus = CentralSequencer::new(&membership(), CentralDelays::Uniform(SimTime::from_ms(1.0)));
        assert!(bus.publish(n(0), g(7), 0).is_err());
    }

    #[test]
    fn network_backed_delays() {
        let mut rng = StdRng::seed_from_u64(3);
        let setup = NetworkSetup::generate(&TransitStubParams::small(), 6, 3, &mut rng);
        let delays = CentralDelays::on_network(&setup, RouterId(0));
        let m = Membership::from_groups([(g(0), vec![n(0), n(1), n(2), n(3)])]);
        let mut bus = CentralSequencer::new(&m, delays);
        bus.publish(n(0), g(0), 0).unwrap();
        bus.run_to_quiescence();
        for d in bus.all_deliveries() {
            assert!(d.arrived >= d.published);
            // Traversal goes through the sequencer: at least the unicast
            // time for any destination (triangle inequality on shortest
            // paths).
            assert!(d.arrived - d.published >= d.unicast);
        }
    }
}
