//! Baseline ordering schemes the paper compares against (§2, §4).
//!
//! * [`CentralSequencer`] — a single node assigns one global sequence
//!   number to *every* message in the system. Simple, totally ordered, and
//!   the scalability anti-pattern the paper motivates against: the
//!   sequencer's load equals the total message rate and it is a single
//!   point of failure.
//! * [`CausalBroadcast`] — vector-timestamp causal ordering
//!   (Birman–Schiper–Stephenson style). Decentralized, but every message
//!   carries an `O(N)`-entry timestamp and must effectively be broadcast so
//!   that the clock entries stay interpretable — the overhead argument of
//!   §2/§4.4.
//! * [`PropagationTree`] — Garcia-Molina/Spauster-style ordered multicast
//!   through a tree of subscriber nodes, the related work the paper calls
//!   closest to its own (§2): sequencing is overlapped with distribution
//!   and lands on the most-subscribed destination nodes.
//! * [`TokenRing`] — sender-based total order: a node may publish only
//!   while holding the circulating token. Decentralized, but "token-based
//!   protocols introduce long delays when nodes must wait for the token"
//!   (§2) — measurable here as the publish-to-flush wait.
//! * [`DirectUnicast`] — shortest-path delivery with no ordering at all:
//!   the latency-stretch denominator of §4.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod central;
mod propagation;
mod token;
mod unicast;
mod vector;

pub use central::{CentralDelays, CentralSequencer};
pub use propagation::PropagationTree;
pub use token::TokenRing;
pub use unicast::DirectUnicast;
pub use vector::{CausalBroadcast, VcMessage, VectorClock};

/// Ordering-metadata size in bytes of a vector timestamp over `n` nodes
/// (8 bytes per entry) — compare with
/// [`seqnet_core::Message::ordering_overhead_bytes`].
pub fn vector_timestamp_bytes(n: usize) -> usize {
    8 * n
}

#[cfg(test)]
mod tests {
    #[test]
    fn vector_overhead_linear_in_nodes() {
        assert_eq!(super::vector_timestamp_bytes(128), 1024);
        assert_eq!(super::vector_timestamp_bytes(0), 0);
    }
}
