//! Vector-timestamp causal ordering (the decentralized baseline).
//!
//! Symmetric protocols append timestamps to every message and let
//! receivers delay out-of-causal-order deliveries (paper §2). The classic
//! instance is Birman–Schiper–Stephenson causal *broadcast*: every message
//! carries a full vector clock with one entry per node. It needs no
//! sequencers at all — but the timestamp grows linearly with the system
//! size, and entries only stay interpretable if every node sees every
//! message (or per-group clocks are kept, multiplying state). That
//! overhead is precisely what the sequencing-network design avoids.

use seqnet_membership::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// A vector clock over `n` nodes: entry `i` counts messages broadcast by
/// node `i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// A zero clock for `n` nodes.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Entry for `node`.
    pub fn get(&self, node: NodeId) -> u64 {
        self.0[node.index()]
    }

    /// Increments `node`'s entry.
    pub fn tick(&mut self, node: NodeId) {
        self.0[node.index()] += 1;
    }

    /// Pointwise maximum with `other`.
    pub fn merge(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Number of entries (== number of nodes).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for a clock over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Serialized size in bytes (8 per entry) — the per-message overhead.
    pub fn size_bytes(&self) -> usize {
        self.0.len() * 8
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// A broadcast message carrying its sender's vector timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcMessage {
    /// The broadcasting node.
    pub sender: NodeId,
    /// The sender's clock *after* ticking its own entry.
    pub vc: VectorClock,
    /// Application payload tag (tests use it to check ordering).
    pub tag: u64,
}

/// One node's state in the causal-broadcast protocol.
///
/// # Example
///
/// ```
/// use seqnet_membership::NodeId;
/// use seqnet_baseline::CausalBroadcast;
///
/// let mut a = CausalBroadcast::new(NodeId(0), 3);
/// let mut b = CausalBroadcast::new(NodeId(1), 3);
/// let m1 = a.broadcast(1);
/// let delivered = b.receive(m1);
/// assert_eq!(delivered.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CausalBroadcast {
    node: NodeId,
    clock: VectorClock,
    buffer: VecDeque<VcMessage>,
    delivered: u64,
}

impl CausalBroadcast {
    /// Creates the state for `node` in a system of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node`'s index does not fit the clock (`node.index() >=
    /// n`) — size `n` by the highest node id plus one, not by the node
    /// count, when ids are sparse.
    pub fn new(node: NodeId, n: usize) -> Self {
        assert!(
            node.index() < n,
            "node {node} does not fit a {n}-entry vector clock"
        );
        CausalBroadcast {
            node,
            clock: VectorClock::new(n),
            buffer: VecDeque::new(),
            delivered: 0,
        }
    }

    /// Broadcasts a message: ticks the local clock and returns the message
    /// to be sent to every other node (the local copy counts as delivered).
    pub fn broadcast(&mut self, tag: u64) -> VcMessage {
        self.clock.tick(self.node);
        self.delivered += 1;
        VcMessage {
            sender: self.node,
            vc: self.clock.clone(),
            tag,
        }
    }

    /// Whether `msg` is deliverable under the BSS condition: the next
    /// message from its sender, with no causal predecessors missing.
    pub fn is_deliverable(&self, msg: &VcMessage) -> bool {
        let j = msg.sender;
        if msg.vc.get(j) != self.clock.get(j) + 1 {
            return false;
        }
        (0..self.clock.len() as u32)
            .map(NodeId)
            .filter(|&k| k != j)
            .all(|k| msg.vc.get(k) <= self.clock.get(k))
    }

    /// Receives a message from the network; returns all messages that
    /// become deliverable, in delivery order.
    ///
    /// # Panics
    ///
    /// Panics if a node receives its own broadcast (the local copy is
    /// delivered inside [`CausalBroadcast::broadcast`]).
    pub fn receive(&mut self, msg: VcMessage) -> Vec<VcMessage> {
        assert!(msg.sender != self.node, "own broadcasts are self-delivered");
        self.buffer.push_back(msg);
        let mut out = Vec::new();
        while let Some(idx) = self.buffer.iter().position(|m| self.is_deliverable(m)) {
            let m = self.buffer.remove(idx).expect("index in range");
            // Advance: adopt the sender's entry; others were already ≤ ours.
            self.clock.merge(&m.vc);
            self.delivered += 1;
            out.push(m);
        }
        out
    }

    /// Messages waiting for causal predecessors.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Total messages delivered (including own broadcasts).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// The node's current clock.
    pub fn clock(&self) -> &VectorClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn fifo_from_single_sender() {
        let mut a = CausalBroadcast::new(n(0), 2);
        let mut b = CausalBroadcast::new(n(1), 2);
        let m1 = a.broadcast(1);
        let m2 = a.broadcast(2);
        // Deliver out of order: m2 must wait.
        assert!(b.receive(m2).is_empty());
        assert_eq!(b.pending(), 1);
        let out = b.receive(m1);
        assert_eq!(out.iter().map(|m| m.tag).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn causal_chain_across_nodes() {
        let mut a = CausalBroadcast::new(n(0), 3);
        let mut b = CausalBroadcast::new(n(1), 3);
        let mut c = CausalBroadcast::new(n(2), 3);
        let m1 = a.broadcast(1);
        assert_eq!(b.receive(m1.clone()).len(), 1);
        let m2 = b.broadcast(2); // causally after m1
        // c receives the reply before the original: must buffer.
        assert!(c.receive(m2.clone()).is_empty());
        let out = c.receive(m1);
        assert_eq!(out.iter().map(|m| m.tag).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn concurrent_messages_deliver_in_any_order() {
        let mut a = CausalBroadcast::new(n(0), 3);
        let mut b = CausalBroadcast::new(n(1), 3);
        let mut c = CausalBroadcast::new(n(2), 3);
        let ma = a.broadcast(1);
        let mb = b.broadcast(2);
        // Concurrent: c can deliver them in either arrival order.
        assert_eq!(c.receive(mb).len(), 1);
        assert_eq!(c.receive(ma).len(), 1);
        assert_eq!(c.delivered_count(), 2);
    }

    #[test]
    fn random_permutations_respect_causality() {
        use rand::seq::SliceRandom;
        use rand::{rngs::StdRng, SeedableRng};
        // Nodes 0..3 broadcast in a total causal chain (each broadcast
        // causally follows all previous ones); node 3 only observes.
        let n_broadcasters = 3u32;
        let system_size = 4usize;
        let mut nodes: Vec<CausalBroadcast> = (0..n_broadcasters)
            .map(|i| CausalBroadcast::new(n(i), system_size))
            .collect();
        let mut history: Vec<VcMessage> = Vec::new();
        for round in 0..4u64 {
            #[allow(clippy::needless_range_loop)] // parallel-indexing is the clear form
            for i in 0..n_broadcasters as usize {
                // Deliver every earlier broadcast to node i first, so its
                // next broadcast causally depends on all of them.
                for m in history.clone() {
                    if m.sender != nodes[i].node
                        && m.vc.get(m.sender) > nodes[i].clock().get(m.sender)
                    {
                        let _ = nodes[i].receive(m);
                    }
                }
                history.push(nodes[i].broadcast(round * 10 + i as u64));
            }
        }
        let expected: Vec<u64> = history.iter().map(|m| m.tag).collect();
        // The observer receives the history in random orders; causal
        // delivery must always reproduce the chain order.
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut shuffled = history.clone();
            shuffled.shuffle(&mut rng);
            let mut observer = CausalBroadcast::new(n(3), system_size);
            let mut got = Vec::new();
            for m in shuffled {
                got.extend(observer.receive(m).iter().map(|m| m.tag));
            }
            assert_eq!(got, expected, "seed {seed}");
            assert_eq!(observer.pending(), 0);
        }
    }

    #[test]
    fn clock_display_and_size() {
        let mut vc = VectorClock::new(3);
        vc.tick(n(1));
        assert_eq!(vc.to_string(), "<0,1,0>");
        assert_eq!(vc.size_bytes(), 24);
        assert!(!vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn sparse_node_ids_need_wide_clocks() {
        // Regression: sizing the clock by node *count* breaks when ids are
        // sparse; the constructor now rejects the mismatch loudly.
        let _ = CausalBroadcast::new(n(19), 18);
    }

    #[test]
    #[should_panic(expected = "own broadcasts")]
    fn own_message_rejected() {
        let mut a = CausalBroadcast::new(n(0), 2);
        let m = a.broadcast(1);
        let _ = a.receive(m);
    }
}
