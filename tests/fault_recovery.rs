//! Sequencer crash–recovery, end to end.
//!
//! Runtime side: killing and restarting sequencing-node threads
//! ([`Cluster::crash_node`] / [`Cluster::restart_node`]) must never lose a
//! message or break order agreement — restarted nodes rebuild from their
//! latest snapshot plus replay out of upstream retransmission buffers
//! (the paper's §3.1 output buffers doubling as a recovery log).
//!
//! Simulator side: any deterministic [`FaultPlan`] (crashes, partitions,
//! burst loss) must preserve Definition 1 — every message eventually
//! delivered, overlap members agreeing on order — and the same seed must
//! reproduce the run byte for byte.

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet::core::{Message, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};
use seqnet::sim::{FaultPlan, SimTime};
use std::collections::BTreeMap;
use std::time::Duration;

mod strategies;

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

fn overlapped_membership() -> Membership {
    Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ])
}

/// Three groups forming two double overlaps with *disjoint* member sets
/// ({0,1} and {10,11}), which the co-location heuristic can never merge —
/// so this topology deterministically yields exactly two sequencing nodes
/// for every seed, and g0's path crosses both (a node-to-node link, which
/// heartbeat-based failure detection needs).
fn two_sequencing_node_membership() -> Membership {
    Membership::from_groups([
        (g(0), vec![n(0), n(1), n(10), n(11)]),
        (g(1), vec![n(0), n(1), n(2)]),
        (g(2), vec![n(10), n(11), n(12)]),
    ])
}

fn assert_pairwise_agreement(m: &Membership, deliveries: &BTreeMap<NodeId, Vec<Message>>) {
    let nodes: Vec<NodeId> = m.nodes().collect();
    let empty = Vec::new();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let da: Vec<_> = deliveries.get(&a).unwrap_or(&empty).iter().map(|x| x.id).collect();
            let db: Vec<_> = deliveries.get(&b).unwrap_or(&empty).iter().map(|x| x.id).collect();
            let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
            let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "{a} and {b} disagree");
        }
    }
}

fn merge(
    into: &mut BTreeMap<NodeId, Vec<Message>>,
    from: BTreeMap<NodeId, Vec<Message>>,
) {
    for (node, msgs) in from {
        into.entry(node).or_default().extend(msgs);
    }
}

/// Crash one node mid-stream, keep publishing into the outage, restart:
/// everything is delivered and overlap members still agree on order.
#[test]
fn crash_mid_stream_is_transparent() {
    let m = overlapped_membership();
    let mut cluster = Cluster::start(&m, ClusterConfig::default());

    let mut expected = 0usize;
    for i in 0..4u32 {
        let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
        cluster.publish(s, grp, vec![i as u8]).unwrap();
        expected += m.group_size(grp);
    }
    let mut all = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .unwrap();

    assert!(cluster.crash_node(0), "node 0 was running");
    assert!(!cluster.crash_node(0), "second kill is a no-op");
    let mut expected = 0usize;
    for i in 4..8u32 {
        let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
        cluster.publish(s, grp, vec![i as u8]).unwrap();
        expected += m.group_size(grp);
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(cluster.restart_node(0), "node 0 was down");
    assert!(!cluster.restart_node(0), "second restart is a no-op");
    merge(
        &mut all,
        cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap(),
    );

    assert_pairwise_agreement(&m, &all);
    assert_eq!(all.values().map(Vec::len).sum::<usize>(), 24);
    cluster.shutdown();
    assert_eq!(cluster.stats().recovery.crashes, 1);
}

/// The same kill/restart transparency with frame coalescing enabled: a
/// crash can now interrupt multi-frame wire writes, and the restarted
/// node's replay arrives partly as coalesced runs — recovery must not
/// depend on the one-frame-per-write framing. The wire histogram proves
/// the run actually coalesced.
#[test]
fn crash_mid_stream_is_transparent_with_coalescing() {
    let m = overlapped_membership();
    let mut cluster = Cluster::start(
        &m,
        ClusterConfig {
            coalesce: true,
            ..ClusterConfig::default()
        },
    );

    // Bursts keep several frames staged per snapshot, so flushes release
    // multi-frame runs rather than singletons.
    let mut all = BTreeMap::new();
    let mut publish_burst = |cluster: &mut Cluster, base: u32| -> usize {
        let mut expected = 0usize;
        for i in base..base + 6 {
            let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
            cluster.publish(s, grp, vec![i as u8]).unwrap();
            expected += m.group_size(grp);
        }
        expected
    };
    let expected = publish_burst(&mut cluster, 0);
    merge(
        &mut all,
        cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap(),
    );

    assert!(cluster.crash_node(0), "node 0 was running");
    let expected = publish_burst(&mut cluster, 6);
    std::thread::sleep(Duration::from_millis(20));
    assert!(cluster.restart_node(0), "node 0 was down");
    merge(
        &mut all,
        cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap(),
    );

    assert_pairwise_agreement(&m, &all);
    assert_eq!(all.values().map(Vec::len).sum::<usize>(), 36);
    cluster.shutdown();
    assert_eq!(cluster.stats().recovery.crashes, 1);
    assert!(
        cluster.stats().recovery.frames_replayed > 0,
        "restart must replay the outage backlog"
    );
    assert!(
        cluster.batch_size_counts().keys().any(|&size| size > 1),
        "coalescing must actually produce multi-frame wire writes: {:?}",
        cluster.batch_size_counts()
    );
}

/// Crash while lossy links are already forcing retransmissions: the crash
/// and the loss recovery must compose.
#[test]
fn crash_during_retransmission_storm() {
    let m = overlapped_membership();
    let config = ClusterConfig {
        drop_probability: 0.3,
        retransmit_timeout: Duration::from_millis(3),
        backoff_cap: Duration::from_millis(24),
        seed: 1234,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m, config);
    let mut expected = 0usize;
    for i in 0..8u32 {
        let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
        cluster.publish(s, grp, vec![i as u8]).unwrap();
        expected += m.group_size(grp);
    }
    // Kill node 0 while those frames are still in flight (and some of them
    // already dropped, awaiting retransmission).
    assert!(cluster.crash_node(0));
    std::thread::sleep(Duration::from_millis(25));
    assert!(cluster.restart_node(0));
    let all = cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    assert_pairwise_agreement(&m, &all);
    cluster.shutdown();
    let stats = cluster.stats();
    assert_eq!(stats.recovery.crashes, 1);
    assert!(stats.frames_dropped > 0, "loss injector actually fired");
    assert!(stats.retransmissions > 0, "retransmission actually fired");
}

/// Two sequencing nodes down at the same time, publishes flowing into the
/// double outage; both populations converge after both restarts.
#[test]
fn two_nodes_down_concurrently() {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
        (g(10), vec![n(10), n(11), n(12)]),
        (g(11), vec![n(11), n(12), n(13)]),
    ]);
    let mut cluster = Cluster::start(&m, ClusterConfig::default());
    assert!(
        cluster.num_sequencing_nodes() >= 2,
        "ingress atoms alone force multiple sequencing nodes"
    );

    let groups = [g(0), g(1), g(10), g(11)];
    let mut expected = 0usize;
    for (i, &grp) in groups.iter().enumerate() {
        let sender = m.members(grp).next().unwrap();
        cluster.publish(sender, grp, vec![i as u8]).unwrap();
        expected += m.group_size(grp);
    }
    let mut all = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .unwrap();

    assert!(cluster.crash_node(0));
    assert!(cluster.crash_node(1));
    let mut expected = 0usize;
    for (i, &grp) in groups.iter().enumerate() {
        let sender = m.members(grp).next().unwrap();
        cluster.publish(sender, grp, vec![10 + i as u8]).unwrap();
        expected += m.group_size(grp);
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(cluster.restart_node(0));
    assert!(cluster.restart_node(1));
    merge(
        &mut all,
        cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap(),
    );

    assert_pairwise_agreement(&m, &all);
    cluster.shutdown();
    assert_eq!(cluster.stats().recovery.crashes, 2);
}

/// Kill every sequencing node in turn, each time publishing into the
/// outage. Every restarted node must rebuild via snapshot + replay, and
/// the runtime must account for it: nonzero crash count, nonzero replayed
/// frames, nonzero recovery latency, and heartbeat-based detections.
#[test]
fn every_node_crashes_and_replay_restores_service() {
    let m = two_sequencing_node_membership();
    let config = ClusterConfig {
        snapshot_interval: Duration::from_millis(2),
        heartbeat_interval: Duration::from_millis(5),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m, config);
    let nodes = cluster.num_sequencing_nodes();
    assert_eq!(nodes, 2, "disjoint-member overlap atoms are never merged");

    let groups = [g(0), g(1), g(2)];
    let mut all: BTreeMap<NodeId, Vec<Message>> = BTreeMap::new();
    let mut payload = 0u8;
    let mut expected = 0usize;
    for &grp in &groups {
        let sender = m.members(grp).next().unwrap();
        cluster.publish(sender, grp, vec![payload]).unwrap();
        payload += 1;
        expected += m.group_size(grp);
    }
    merge(
        &mut all,
        cluster
            .wait_for_deliveries(expected, Duration::from_secs(30))
            .unwrap(),
    );

    for idx in 0..nodes {
        assert!(cluster.crash_node(idx), "node {idx} was running");
        // Publishes during the downtime queue in the dead node's inbox (or
        // retry from upstream buffers) and are replayed after the restart.
        // g0's path crosses both sequencing nodes, so every outage sits on
        // some group's path.
        let mut expected = 0usize;
        for &grp in &groups {
            let sender = m.members(grp).next().unwrap();
            cluster.publish(sender, grp, vec![payload]).unwrap();
            payload += 1;
            expected += m.group_size(grp);
        }
        // Outage longer than three heartbeat intervals, so live watchers
        // suspect the dead node's upstream silence.
        std::thread::sleep(Duration::from_millis(25));
        assert!(cluster.restart_node(idx), "node {idx} was down");
        merge(
            &mut all,
            cluster
                .wait_for_deliveries(expected, Duration::from_secs(30))
                .unwrap(),
        );
    }

    assert_pairwise_agreement(&m, &all);
    cluster.shutdown();
    let stats = cluster.stats();
    assert_eq!(stats.recovery.crashes, nodes as u64);
    assert!(
        stats.recovery.frames_replayed > 0,
        "restarted nodes rebuilt from upstream replay"
    );
    assert!(stats.recovery.recovery_micros > 0, "recovery latency was measured");
    assert!(
        stats.heartbeat_misses > 0,
        "an outage longer than three heartbeat intervals was detected"
    );
}

/// Driving the runtime from a [`FaultPlan`] executes its crash windows on
/// the wall clock; deliveries and order agreement survive.
#[test]
fn runtime_executes_fault_plan_windows() {
    let m = two_sequencing_node_membership();
    let mut cluster = Cluster::start(&m, ClusterConfig::default());
    assert_eq!(cluster.num_sequencing_nodes(), 2);
    // Both windows name real sequencing nodes, so both crashes execute.
    let plan = FaultPlan::new()
        .crash(0, SimTime::from_micros(2_000), SimTime::from_micros(30_000))
        .crash(1, SimTime::from_micros(10_000), SimTime::from_micros(35_000));
    let groups = [g(0), g(1), g(2)];
    let mut expected = 0usize;
    for i in 0..6u32 {
        let grp = groups[i as usize % groups.len()];
        let sender = m.members(grp).next().unwrap();
        cluster.publish(sender, grp, vec![i as u8]).unwrap();
        expected += m.group_size(grp);
    }
    cluster.run_fault_plan(&plan);
    let all = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .unwrap();
    assert_pairwise_agreement(&m, &all);
    cluster.shutdown();
    assert_eq!(cluster.stats().recovery.crashes, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Definition 1 under arbitrary randomized fault schedules in the
    /// simulator, over arbitrary double-overlapped memberships from the
    /// shared strategy module: every message is eventually delivered to
    /// every group member and overlap members agree on the relative order.
    #[test]
    fn faulty_runs_stay_totally_ordered(
        m in strategies::overlapped_membership(),
        seed in any::<u64>(),
        schedule in vec((0usize..64, 0usize..64, 0u64..20_000), 1..16),
    ) {
        let mut bus = OrderedPubSub::new(&m);
        let atoms = bus.graph().num_atoms();
        bus.apply_fault_plan(FaultPlan::randomized(seed, atoms, SimTime::from_ms(40.0)));
        let nodes: Vec<NodeId> = m.nodes().collect();
        let groups: Vec<GroupId> = m.groups().collect();
        let mut expected = 0usize;
        for &(s, grp, t) in &schedule {
            let group = groups[grp % groups.len()];
            bus.publish_at(SimTime::from_micros(t), nodes[s % nodes.len()], group, vec![])
                .unwrap();
            expected += m.group_size(group);
        }
        bus.run_to_quiescence();

        prop_assert_eq!(bus.stuck_messages(), 0, "faults deadlocked the run");
        prop_assert_eq!(bus.all_deliveries().count(), expected, "a fault lost messages");
        // Nodes 0 and 1 form the strategy's guaranteed double overlap;
        // their common messages must appear in the same relative order.
        let o1: Vec<_> = bus.delivered(n(0)).iter().map(|d| d.id).collect();
        let o2: Vec<_> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
        let c1: Vec<_> = o1.iter().filter(|x| o2.contains(x)).collect();
        let c2: Vec<_> = o2.iter().filter(|x| o1.contains(x)).collect();
        prop_assert_eq!(c1, c2, "overlap members diverged under faults");
    }

    /// The same fault-plan seed reproduces the run byte for byte:
    /// identical deliveries at identical virtual times, identical fault
    /// accounting.
    #[test]
    fn fault_schedules_are_reproducible(seed in any::<u64>()) {
        let run = |seed: u64| {
            let m = overlapped_membership();
            let mut bus = OrderedPubSub::new(&m);
            let atoms = bus.graph().num_atoms();
            bus.apply_fault_plan(FaultPlan::randomized(seed, atoms, SimTime::from_ms(40.0)));
            for i in 0..6u32 {
                let (s, grp) = if i % 2 == 0 { (n(0), g(0)) } else { (n(3), g(1)) };
                bus.publish_at(SimTime::from_micros(u64::from(i) * 900), s, grp, vec![i as u8])
                    .unwrap();
            }
            bus.run_to_quiescence();
            let mut log: Vec<(NodeId, u64, SimTime)> = bus
                .all_deliveries()
                .map(|d| (d.destination, d.id.0, d.delivered))
                .collect();
            log.sort();
            (log, bus.fault_stats())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
