//! End-to-end simulation runs on generated topologies with the paper's
//! workloads: everything is delivered, orders agree, stretch is sane.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::core::{metrics, NetworkSetup, OrderedPubSub};
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::topology::TransitStubParams;

/// The Figure 3 workload: every node sends one message to every group it
/// subscribes to.
fn publish_fig3_workload(bus: &mut OrderedPubSub, m: &Membership) -> usize {
    let mut expected = 0;
    for node in m.nodes().collect::<Vec<_>>() {
        for group in m.groups_of(node).collect::<Vec<_>>() {
            bus.publish(node, group, vec![]).unwrap();
            expected += m.group_size(group);
        }
    }
    expected
}

fn assert_pairwise_agreement(bus: &OrderedPubSub, m: &Membership) {
    let nodes: Vec<NodeId> = m.nodes().collect();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let da: Vec<_> = bus.delivered(a).iter().map(|d| d.id).collect();
            let db: Vec<_> = bus.delivered(b).iter().map(|d| d.id).collect();
            let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
            let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "{a} and {b} disagree on common messages");
        }
    }
}

#[test]
fn zipf_workload_on_small_topology() {
    let mut rng = StdRng::seed_from_u64(2006);
    let setup = NetworkSetup::generate(&TransitStubParams::small(), 24, 6, &mut rng);
    let m = ZipfGroups::new(24, 8).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
    let expected = publish_fig3_workload(&mut bus, &m);
    bus.run_to_quiescence();

    assert_eq!(bus.stuck_messages(), 0);
    assert_eq!(bus.all_deliveries().count(), expected);
    assert_pairwise_agreement(&bus, &m);
}

#[test]
fn stretch_is_at_least_one_on_network_runs() {
    let mut rng = StdRng::seed_from_u64(99);
    let setup = NetworkSetup::generate(&TransitStubParams::small(), 16, 4, &mut rng);
    let m = ZipfGroups::new(16, 6).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
    publish_fig3_workload(&mut bus, &m);
    bus.run_to_quiescence();

    let stretch = metrics::stretch_by_destination(bus.all_deliveries());
    assert!(!stretch.is_empty());
    for (node, s) in stretch {
        assert!(
            s >= 1.0,
            "{node}: stretch {s} below 1 — sequencing cannot beat the shortest path"
        );
        assert!(s.is_finite());
    }
}

#[test]
fn rdp_points_match_record_count() {
    let mut rng = StdRng::seed_from_u64(123);
    let setup = NetworkSetup::generate(&TransitStubParams::small(), 12, 4, &mut rng);
    let m = ZipfGroups::new(12, 4).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
    publish_fig3_workload(&mut bus, &m);
    bus.run_to_quiescence();

    let non_self = bus
        .all_deliveries()
        .filter(|d| d.destination != d.sender && d.unicast.as_micros() > 0)
        .count();
    let pts = metrics::rdp_scatter(bus.all_deliveries());
    assert_eq!(pts.len(), non_self);
    for (unicast_ms, rdp) in pts {
        assert!(unicast_ms > 0.0);
        assert!(rdp >= 1.0, "rdp {rdp} below 1");
    }
}

#[test]
fn medium_topology_with_many_groups() {
    let mut rng = StdRng::seed_from_u64(7);
    let setup = NetworkSetup::generate(&TransitStubParams::medium(), 32, 8, &mut rng);
    let m = ZipfGroups::new(32, 16).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
    let expected = publish_fig3_workload(&mut bus, &m);
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);
    assert_eq!(bus.all_deliveries().count(), expected);
    assert_pairwise_agreement(&bus, &m);
}

#[test]
fn repeated_rounds_remain_consistent() {
    // Several rounds of the workload through the same engine: counters
    // keep advancing, order stays consistent.
    let mut rng = StdRng::seed_from_u64(55);
    let m = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
        (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
        (GroupId(2), vec![NodeId(0), NodeId(2), NodeId(3)]),
    ]);
    let setup = NetworkSetup::generate(&TransitStubParams::small(), 4, 2, &mut rng);
    let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
    for _round in 0..5 {
        publish_fig3_workload(&mut bus, &m);
        bus.run_to_quiescence();
    }
    assert_eq!(bus.stuck_messages(), 0);
    assert_pairwise_agreement(&bus, &m);
    // 5 rounds x (sum over nodes of sum of group sizes of its groups)
    let per_round: usize = m
        .nodes()
        .map(|n| m.groups_of(n).map(|g| m.group_size(g)).sum::<usize>())
        .sum();
    assert_eq!(bus.all_deliveries().count(), 5 * per_round);
}

#[test]
fn receiver_load_bounds_stamping_load() {
    // The scalability claim (§1.2/§4.3): "sequencing atoms order no more
    // messages than the most active receiver in the network". Every
    // message an atom *stamps* is received by each of its overlap members,
    // so no atom's stamping load can exceed the busiest receiver's load.
    let mut rng = StdRng::seed_from_u64(11);
    let m = ZipfGroups::new(16, 6).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::new(&m);
    publish_fig3_workload(&mut bus, &m);
    bus.run_to_quiescence();

    let max_stamping = bus.atom_stamp_loads().iter().copied().max().unwrap_or(0);
    let max_receiver = bus.receiver_loads().values().copied().max().unwrap_or(0);
    assert!(
        max_stamping <= max_receiver,
        "busiest atom stamps {max_stamping} > busiest receiver {max_receiver}"
    );
}
