//! The two properties that make protocol traces trustworthy
//! (PROTOCOL.md §11.3):
//!
//! 1. **Driver equivalence** — the simulator and the threaded runtime
//!    drive the same sans-I/O cores, so for one membership and one
//!    publish order they must emit identical *deterministic projections*
//!    of the event stream: the global publish sequence, which messages
//!    each sequencing atom stamped, and the per-(host, group) delivery
//!    streams with their group-local numbers. Timestamps and the
//!    cross-group interleaving of events are timing-dependent and are
//!    deliberately outside the projection (same scope rule as
//!    `tests/sim_runtime_equivalence.rs`).
//! 2. **Deterministic replay** — a flight recording of a model-checker
//!    schedule is itself a reproducible artifact: replaying the same
//!    decision list twice produces byte-identical JSONL dumps, and the
//!    dump round-trips through the parser.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::core::OrderedPubSub;
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::obs::jsonl::{parse_jsonl_lines, to_jsonl_lines};
use seqnet::obs::{Actor, EventKind, FlightRecorder, Recorder, TraceEvent};
use seqnet::runtime::{Cluster, ClusterConfig};
use seqnet::sim::SimTime;
use seqnet_check::scenario::two_group_overlap;
use seqnet_check::shrink::replay_traced;
use seqnet_check::default_oracles;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The schedule-independent projection of an event stream. Everything
/// here is fixed by the membership and the global publish order; nothing
/// depends on the driver's clock or thread interleaving.
#[derive(Debug, PartialEq, Eq)]
struct Projection {
    /// `(msg, group, publishing host)` in publish order.
    publishes: Vec<(u64, u64, u64)>,
    /// Per atom: the sorted set of message ids it stamped. (The seq a
    /// shared overlap atom assigns to a given message may legitimately
    /// differ across drivers — only *which* messages cross it is
    /// structural.)
    stamped: BTreeMap<u64, Vec<u64>>,
    /// Per `(host, group)`: `(msg, group-local seq)` in delivery order.
    delivered: BTreeMap<(u64, u64), Vec<(u64, u64)>>,
}

fn project(events: &[TraceEvent]) -> Projection {
    let mut p = Projection {
        publishes: Vec::new(),
        stamped: BTreeMap::new(),
        delivered: BTreeMap::new(),
    };
    for e in events {
        match e.kind {
            EventKind::Publish => {
                p.publishes
                    .push((e.msg.unwrap(), e.group.unwrap(), e.detail.unwrap()));
            }
            EventKind::AtomStamp => {
                p.stamped
                    .entry(e.atom.unwrap())
                    .or_default()
                    .push(e.msg.unwrap());
            }
            EventKind::Deliver => {
                let Actor::Host(host) = e.actor else {
                    panic!("deliver events come from hosts, got {}", e.actor);
                };
                p.delivered
                    .entry((host, e.group.unwrap()))
                    .or_default()
                    .push((e.msg.unwrap(), e.seq.unwrap()));
            }
            _ => {}
        }
    }
    for msgs in p.stamped.values_mut() {
        msgs.sort_unstable();
    }
    p
}

fn assert_fault_free(events: &[TraceEvent], driver: &str) {
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Crash | EventKind::Replay)),
        "{driver}: a fault-free run must not report crash or replay events"
    );
}

/// The shared workload of `tests/sim_runtime_equivalence.rs`: every node
/// publishes to every group it belongs to, twice, in one global order.
fn workload(m: &Membership) -> (Vec<(NodeId, GroupId)>, usize) {
    let mut publishes = Vec::new();
    let mut expected = 0usize;
    for _ in 0..2 {
        for node in m.nodes().collect::<Vec<_>>() {
            for group in m.groups_of(node).collect::<Vec<_>>() {
                publishes.push((node, group));
                expected += m.group_size(group);
            }
        }
    }
    (publishes, expected)
}

#[test]
fn sim_and_runtime_emit_the_same_projection() {
    let seed = 11u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ZipfGroups::new(10, 4).with_min_size(2).sample(&mut rng);
    let (publishes, expected) = workload(&m);

    // Simulator: strictly increasing publish times keep ingress arrival
    // order identical to publish order.
    let mut bus = OrderedPubSub::new(&m);
    let sim_rec = Arc::new(Mutex::new(Recorder::new()));
    bus.set_trace_sink(sim_rec.clone());
    for (k, &(node, group)) in publishes.iter().enumerate() {
        bus.publish_at(SimTime::from_micros((k as u64 + 1) * 700), node, group, vec![])
            .unwrap();
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);
    let sim_events = sim_rec.lock().unwrap().events().to_vec();

    // Runtime: the single publisher front-end preserves the same order
    // per ingress over FIFO links.
    let config = ClusterConfig {
        seed,
        trace: true,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m, config);
    for &(node, group) in &publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    cluster.shutdown();
    let runtime_events = cluster.trace_events();

    assert_fault_free(&sim_events, "sim");
    assert_fault_free(&runtime_events, "runtime");

    let sim_view = project(&sim_events);
    let runtime_view = project(&runtime_events);

    // Sanity before the big comparison: both actually saw the workload.
    assert_eq!(sim_view.publishes.len(), publishes.len());
    assert_eq!(
        sim_view.delivered.values().map(Vec::len).sum::<usize>(),
        expected
    );
    assert_eq!(
        sim_view, runtime_view,
        "sim and runtime disagree on the deterministic trace projection"
    );
}

#[test]
fn flight_recorder_replay_is_byte_identical() {
    // A crash-window scenario: reaching the terminal state forces the
    // fault plan's crash/restart transitions to fire, so the recording
    // covers the recovery path too.
    let scenario = two_group_overlap().crash_variant();
    // A long pseudo-arbitrary schedule; out-of-range decisions wrap
    // modulo the enabled count, and replay stops at the terminal state.
    let decisions: Vec<u32> = (0..500).map(|i| (i * 7 + 3) % 13).collect();

    let mut first = FlightRecorder::new(65_536);
    let r1 = replay_traced(&scenario, &default_oracles(), &decisions, &mut first);
    let mut second = FlightRecorder::new(65_536);
    let r2 = replay_traced(&scenario, &default_oracles(), &decisions, &mut second);

    assert!(r1.violation.is_none(), "the scenario passes its oracles");
    assert_eq!(r1.log, r2.log, "step logs must replay deterministically");
    assert_eq!(
        first.dump_jsonl(),
        second.dump_jsonl(),
        "flight-recorder dumps must be byte-identical across replays"
    );
    assert!(first.seen() > 0, "the run emitted events");
    assert!(
        first.events().any(|e| e.kind == EventKind::Crash),
        "the crash variant exercises the fault path"
    );

    // The canonicalized decision list reproduces the same recording.
    let mut canonical = FlightRecorder::new(65_536);
    let r3 = replay_traced(&scenario, &default_oracles(), &r1.executed, &mut canonical);
    assert_eq!(r3.log, r1.log);
    assert_eq!(canonical.dump_jsonl(), first.dump_jsonl());

    // And the dump round-trips through the JSONL parser.
    let dump = first.dump_jsonl();
    let parsed = parse_jsonl_lines(&dump).expect("every line parses");
    assert_eq!(to_jsonl_lines(&parsed), dump);
}
