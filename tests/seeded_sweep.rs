//! A broad seeded sweep: many random configurations, one invariant set.
//! Complements the proptest suites with fixed, reproducible coverage of
//! larger configurations than shrinking-friendly proptest inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet::core::OrderedPubSub;
use seqnet::membership::workload::{OccupancyGroups, ZipfGroups};
use seqnet::membership::{Membership, NodeId};
use seqnet::overlap::GraphBuilder;

fn run_and_check(membership: &Membership, seed: u64) {
    let graph = GraphBuilder::new().build(membership);
    graph
        .validate_against(membership)
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

    let mut bus = OrderedPubSub::new(membership);
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = membership.nodes().collect();
    if nodes.is_empty() {
        return;
    }
    let groups: Vec<_> = membership.groups().collect();
    let mut expected = 0usize;
    for _ in 0..40 {
        let group = groups[rng.gen_range(0..groups.len())];
        if membership.group_size(group) == 0 {
            continue;
        }
        let members: Vec<NodeId> = membership.members(group).collect();
        let sender = members[rng.gen_range(0..members.len())];
        bus.publish(sender, group, vec![]).unwrap();
        expected += members.len();
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0, "seed {seed}: deadlock");
    assert_eq!(bus.all_deliveries().count(), expected, "seed {seed}");

    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let da: Vec<_> = bus.delivered(a).iter().map(|d| d.id).collect();
            let db: Vec<_> = bus.delivered(b).iter().map(|d| d.id).collect();
            let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
            let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn fifty_zipf_configurations() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = rng.gen_range(8..40);
        let groups = rng.gen_range(2..12);
        let m = ZipfGroups::new(nodes, groups)
            .with_min_size(2)
            .sample(&mut rng);
        run_and_check(&m, seed);
    }
}

#[test]
fn thirty_dense_configurations() {
    for seed in 100..130u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = rng.gen_range(6..24);
        let groups = rng.gen_range(2..8);
        let occupancy = rng.gen_range(0.2..0.8);
        let m = OccupancyGroups::new(nodes, groups, occupancy).sample(&mut rng);
        if m.is_empty() {
            continue;
        }
        run_and_check(&m, seed);
    }
}

#[test]
fn pathological_shapes() {
    // Full clique of identical groups.
    let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
    let clique = Membership::from_groups(
        (0..6u32).map(|g| (seqnet::membership::GroupId(g), nodes.clone())),
    );
    run_and_check(&clique, 9000);

    // A long chain of pairwise-overlapping groups.
    let chain = Membership::from_groups((0..10u32).map(|g| {
        (
            seqnet::membership::GroupId(g),
            vec![NodeId(g), NodeId(g + 1), NodeId(g + 2)],
        )
    }));
    run_and_check(&chain, 9001);

    // A star: one hub group overlapping many petals pairwise through two
    // shared hub members.
    let mut star = Membership::new();
    for petal in 0..8u32 {
        star.subscribe(NodeId(0), seqnet::membership::GroupId(petal));
        star.subscribe(NodeId(1), seqnet::membership::GroupId(petal));
        star.subscribe(NodeId(10 + petal), seqnet::membership::GroupId(petal));
    }
    run_and_check(&star, 9002);
}

#[test]
fn three_systems_agree_on_delivered_sets() {
    // Differential check: decentralized sequencing, the central sequencer
    // and the Garcia-Molina propagation tree must deliver identical
    // message *sets* to every node (orders legitimately differ in
    // strength) across many seeds.
    use seqnet::baseline::{CentralDelays, CentralSequencer, PropagationTree};
    use seqnet::sim::SimTime;

    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let nodes = rng.gen_range(6..20);
        let groups = rng.gen_range(2..6);
        let m = ZipfGroups::new(nodes, groups)
            .with_min_size(2)
            .sample(&mut rng);

        let mut bus = OrderedPubSub::new(&m);
        let mut central =
            CentralSequencer::new(&m, CentralDelays::Uniform(SimTime::from_ms(1.0)));
        let mut gm = PropagationTree::new(&m, SimTime::from_ms(1.0));
        for node in m.nodes().collect::<Vec<_>>() {
            for group in m.groups_of(node).collect::<Vec<_>>() {
                bus.publish(node, group, vec![]).unwrap();
                central.publish(node, group, 0).unwrap();
                gm.publish(node, group).unwrap();
            }
        }
        bus.run_to_quiescence();
        central.run_to_quiescence();
        gm.run_to_quiescence();

        for node in m.nodes().collect::<Vec<_>>() {
            let mut a: Vec<u64> = bus.delivered(node).iter().map(|d| d.id.0).collect();
            let mut b: Vec<u64> = central.delivered(node).iter().map(|d| d.id.0).collect();
            let mut c: Vec<u64> = gm.delivered(node).iter().map(|d| d.id.0).collect();
            a.sort();
            b.sort();
            c.sort();
            assert_eq!(a, b, "seed {seed}: seqnet vs central at {node}");
            assert_eq!(a, c, "seed {seed}: seqnet vs G-M at {node}");
        }
    }
}
