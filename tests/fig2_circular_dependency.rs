//! Reproduces the paper's Figure 2: without condition C2 the three
//! messages acquire circularly dependent sequence numbers and node B can
//! never deliver; redirecting G1 through Q1 (making the graph loop-free)
//! removes the ambiguity.
//!
//! Groups: G0 = {A,B,D}, G1 = {A,B,C}, G2 = {B,C,D} with A=0, B=1, C=2,
//! D=3. Atoms: Q0 = overlap(G0,G1) = {A,B}, Q1 = overlap(G0,G2) = {B,D},
//! Q2 = overlap(G1,G2) = {B,C}.

use seqnet::core::{DelayModel, Endpoint, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::{Atom, AtomId, AtomKind, GraphError, Overlap, SequencingGraph};
use seqnet::sim::SimTime;
use std::collections::HashMap;

const A: NodeId = NodeId(0);
const B: NodeId = NodeId(1);
const C: NodeId = NodeId(2);
const D: NodeId = NodeId(3);
const G0: GroupId = GroupId(0);
const G1: GroupId = GroupId(1);
const G2: GroupId = GroupId(2);
const Q0: AtomId = AtomId(0);
const Q1: AtomId = AtomId(1);
const Q2: AtomId = AtomId(2);

fn membership() -> Membership {
    Membership::from_groups([
        (G0, vec![A, B, D]),
        (G1, vec![A, B, C]),
        (G2, vec![B, C, D]),
    ])
}

fn atoms() -> Vec<Atom> {
    vec![
        Atom {
            id: Q0,
            kind: AtomKind::Overlap(Overlap::new(G0, G1, [A, B])),
        },
        Atom {
            id: Q1,
            kind: AtomKind::Overlap(Overlap::new(G0, G2, [B, D])),
        },
        Atom {
            id: Q2,
            kind: AtomKind::Overlap(Overlap::new(G1, G2, [B, C])),
        },
    ]
}

/// The paper's timing: the Q1 -> Q2 connection is "very slow compared to
/// the one between Q0 and Q2".
fn delays() -> DelayModel {
    let mut overrides = HashMap::new();
    overrides.insert(
        (Endpoint::Atom(Q1), Endpoint::Atom(Q2)),
        SimTime::from_ms(5.0),
    );
    DelayModel::PerChannel {
        default: SimTime::from_ms(1.0),
        overrides,
    }
}

/// Publishes the paper's three messages: m0 to G0 and m1 to G1 from A
/// (m0 slightly earlier), m2 to G2 from D.
fn publish_all(bus: &mut OrderedPubSub) {
    bus.publish_at(SimTime::ZERO, A, G0, b"m0".to_vec()).unwrap();
    bus.publish_at(SimTime::from_micros(100), A, G1, b"m1".to_vec())
        .unwrap();
    bus.publish_at(SimTime::ZERO, D, G2, b"m2".to_vec()).unwrap();
}

#[test]
fn fig2a_cyclic_graph_fails_validation() {
    let graph = SequencingGraph::from_paths(
        atoms(),
        [(G0, vec![Q0, Q1]), (G1, vec![Q0, Q2]), (G2, vec![Q1, Q2])],
    );
    let err = graph.validate().unwrap_err();
    assert!(matches!(err, GraphError::CycleDetected { .. }), "{err}");
}

#[test]
fn fig2a_circular_dependency_deadlocks_node_b() {
    let graph = SequencingGraph::from_paths(
        atoms(),
        [(G0, vec![Q0, Q1]), (G1, vec![Q0, Q2]), (G2, vec![Q1, Q2])],
    );
    let mut bus = OrderedPubSub::with_graph_unchecked(&membership(), graph, delays())
        .expect("runnable even though invalid");
    publish_all(&mut bus);
    bus.run_to_quiescence();

    // Node B received all three messages but the circular sequence
    // numbers (paper Figure 2(a) table) block every delivery.
    assert_eq!(bus.delivered(B).len(), 0, "B must be deadlocked");
    assert_eq!(bus.stuck_messages(), 3, "all three messages stuck at B");

    // A, C and D each only track one sequencer and can deliver.
    assert_eq!(bus.delivered(A).len(), 2);
    assert_eq!(bus.delivered(C).len(), 2);
    assert_eq!(bus.delivered(D).len(), 2);
}

#[test]
fn fig2b_loop_free_graph_delivers_everything() {
    // "We eliminate the circular dependency by redirecting message m1
    // through sequencer Q1" — G1's path becomes Q0, Q1 (transit), Q2.
    let graph = SequencingGraph::from_paths(
        atoms(),
        [
            (G0, vec![Q0, Q1]),
            (G1, vec![Q0, Q1, Q2]),
            (G2, vec![Q1, Q2]),
        ],
    );
    graph.validate().expect("fig 2(b) satisfies C1 and C2");
    let mut bus =
        OrderedPubSub::with_graph_unchecked(&membership(), graph, delays()).expect("valid");
    publish_all(&mut bus);
    bus.run_to_quiescence();

    assert_eq!(bus.stuck_messages(), 0, "no deadlock with C2");
    assert_eq!(bus.delivered(A).len(), 2);
    assert_eq!(bus.delivered(B).len(), 3, "B delivers all three");
    assert_eq!(bus.delivered(C).len(), 2);
    assert_eq!(bus.delivered(D).len(), 2);

    // Everyone agrees pairwise on common messages.
    let nodes = [A, B, C, D];
    for (i, &x) in nodes.iter().enumerate() {
        for &y in &nodes[i + 1..] {
            let dx: Vec<_> = bus.delivered(x).iter().map(|d| d.id).collect();
            let dy: Vec<_> = bus.delivered(y).iter().map(|d| d.id).collect();
            let cx: Vec<_> = dx.iter().filter(|m| dy.contains(m)).collect();
            let cy: Vec<_> = dy.iter().filter(|m| dx.contains(m)).collect();
            assert_eq!(cx, cy, "{x} and {y} disagree");
        }
    }
}

#[test]
fn builder_produces_a_loop_free_arrangement_for_fig2() {
    // The GraphBuilder must never produce the Figure 2(a) triangle.
    let graph = seqnet::overlap::GraphBuilder::new().build(&membership());
    graph.validate_against(&membership()).expect("valid");
    // Running the same adversarial timings on the built graph delivers.
    let mut bus =
        OrderedPubSub::with_graph_unchecked(&membership(), graph, delays()).expect("valid");
    publish_all(&mut bus);
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);
}
