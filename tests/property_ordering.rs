//! Property-based tests of the protocol's guarantees (Theorem 1 and the
//! causal-order claim) under arbitrary memberships, publish schedules, and
//! adversarial per-channel delays.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet::core::{DelayModel, Endpoint, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::sim::SimTime;
use std::collections::HashMap;

mod strategies;

/// A random membership, drawn from the shared seeded strategy module so
/// this suite, `fault_recovery.rs`, and `seqnet-check`'s random walks all
/// explore the same configuration space.
fn membership_strategy() -> impl Strategy<Value = Membership> {
    strategies::membership()
}

/// Adversarial per-channel delays: every host/atom channel gets a random
/// delay from a seeded RNG, so proptest shrinks over a single seed.
fn adversarial_delays(m: &Membership, seed: u64) -> DelayModel {
    let graph = GraphBuilder::new().build(m);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut overrides = HashMap::new();
    let atoms: Vec<Endpoint> = graph.atoms().iter().map(|a| Endpoint::Atom(a.id)).collect();
    let hosts: Vec<Endpoint> = m.nodes().map(Endpoint::Host).collect();
    for &a in atoms.iter().chain(&hosts) {
        for &b in atoms.iter().chain(&hosts) {
            if a != b {
                overrides.insert((a, b), SimTime::from_micros(rng.gen_range(1..5_000)));
            }
        }
    }
    DelayModel::PerChannel {
        default: SimTime::from_ms(1.0),
        overrides,
    }
}

fn build_bus(m: &Membership, seed: u64) -> OrderedPubSub {
    let graph = GraphBuilder::new().build(m);
    graph.validate_against(m).expect("built graph is valid");
    OrderedPubSub::with_graph_unchecked(m, graph, adversarial_delays(m, seed))
        .expect("valid graph")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness + agreement: every published message reaches every group
    /// member exactly once, and any two nodes deliver their common
    /// messages in the same relative order — for any membership, schedule,
    /// and channel delays.
    #[test]
    fn all_delivered_and_orders_agree(
        m in membership_strategy(),
        schedule in vec((0usize..64, 0usize..64, 0u64..10_000), 1..25),
        seed in any::<u64>(),
    ) {
        let mut bus = build_bus(&m, seed);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();
        let mut expected = 0usize;
        for (s, g, t) in schedule {
            let sender = nodes[s % nodes.len()];
            let group = groups[g % groups.len()];
            bus.publish_at(SimTime::from_micros(t), sender, group, vec![]).unwrap();
            expected += m.group_size(group);
        }
        bus.run_to_quiescence();

        prop_assert_eq!(bus.stuck_messages(), 0, "deadlock detected");
        prop_assert_eq!(bus.all_deliveries().count(), expected);

        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let da: Vec<_> = bus.delivered(a).iter().map(|d| d.id).collect();
                let db: Vec<_> = bus.delivered(b).iter().map(|d| d.id).collect();
                let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
                let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
                prop_assert_eq!(ca, cb, "{} and {} disagree", a, b);
            }
        }
    }

    /// Stamp counts are structural: a message to group g carries exactly
    /// one stamp per live stamping atom of g.
    #[test]
    fn stamp_counts_match_graph(
        m in membership_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = GraphBuilder::new().build(&m);
        let mut bus = build_bus(&m, seed);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();
        for (i, &g) in groups.iter().enumerate() {
            bus.publish(nodes[i % nodes.len()], g, vec![]).unwrap();
        }
        bus.run_to_quiescence();
        for d in bus.all_deliveries() {
            prop_assert_eq!(
                d.stamps,
                graph.stampers(d.group).len(),
                "group {} stamp mismatch", d.group
            );
        }
    }

    /// Causal chains: a reaction published upon delivery is seen after its
    /// cause by every node that receives both.
    #[test]
    fn causal_chains_preserved(
        m in membership_strategy(),
        chain_len in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut bus = build_bus(&m, seed);
        let groups: Vec<GroupId> = m.groups().collect();

        // Build a cross-group causal chain: each link picks a group and a
        // member of that group who reacts to the previous message.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let first_group = groups[rng.gen_range(0..groups.len())];
        let first_sender = {
            let members: Vec<NodeId> = m.members(first_group).collect();
            members[rng.gen_range(0..members.len())]
        };
        let mut chain = vec![bus.publish_causal(first_sender, first_group, vec![0]).unwrap()];
        for step in 1..chain_len {
            // The reactor must subscribe to both the previous group (to see
            // the trigger) and the next group (to publish causally).
            let prev = *chain.last().unwrap();
            let mut candidates = Vec::new();
            for &g in &groups {
                for node in m.members(g) {
                    candidates.push((node, g));
                }
            }
            // Pick a reactor that is a member of some group; it reacts to
            // `prev` only if it actually receives it — ensure that by
            // choosing a member of the previous message's group.
            let prev_group = groups.iter().copied()
                .find(|_| true).expect("non-empty");
            let _ = prev_group;
            let (reactor, group) = candidates[rng.gen_range(0..candidates.len())];
            match bus.publish_after(reactor, prev, group, vec![step as u8]) {
                Ok(id) => chain.push(id),
                Err(_) => break,
            }
        }
        bus.run_to_quiescence();
        prop_assert_eq!(bus.stuck_messages(), 0);

        // For consecutive chain entries that both got published, any node
        // delivering both must see them in chain order.
        for w in chain.windows(2) {
            for node in m.nodes().collect::<Vec<_>>() {
                let order: Vec<_> = bus.delivered(node).iter().map(|d| d.id).collect();
                if let (Some(pc), Some(pe)) = (
                    order.iter().position(|&x| x == w[0]),
                    order.iter().position(|&x| x == w[1]),
                ) {
                    prop_assert!(pc < pe, "{} saw effect before cause", node);
                }
            }
        }
    }

    /// Receiver determinism: feeding the same set of sequenced messages to
    /// a receiver in any arrival permutation yields the same delivery
    /// order.
    #[test]
    fn delivery_order_is_permutation_invariant(
        m in membership_strategy(),
        perm_seed in any::<u64>(),
    ) {
        use seqnet::core::{DeliveryQueue, Message, MessageId, ProtocolState};

        let graph = GraphBuilder::new().build(&m);
        let mut state = ProtocolState::new(&graph);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();

        // Sequence a few messages per group, fully, in a fixed order.
        let mut msgs = Vec::new();
        let mut id = 0u64;
        for round in 0..3 {
            for &g in &groups {
                let mut msg = Message::new(
                    MessageId(id),
                    nodes[(round + id as usize) % nodes.len()],
                    g,
                    vec![],
                );
                state.sequence_fully(&graph, &mut msg);
                msgs.push(msg);
                id += 1;
            }
        }

        // Pick the node with the most subscriptions as the receiver.
        let receiver = nodes
            .iter()
            .copied()
            .max_by_key(|n| m.groups_of(*n).count())
            .expect("nodes exist");
        let mine: Vec<Message> = msgs
            .iter()
            .filter(|msg| m.is_member(receiver, msg.group))
            .cloned()
            .collect();

        // Reference order: feed in sequencing order.
        let reference: Vec<Message> = {
            let mut q = DeliveryQueue::new(receiver, &m, &graph);
            mine.iter().flat_map(|msg| q.offer(msg.clone())).collect()
        };
        prop_assert_eq!(reference.len(), mine.len(), "reference run delivers all");

        // Groups of the receiver that are pairwise double-overlapped have
        // a fully determined relative order; per-group projections are
        // always determined by the group-local numbers. Messages to
        // non-overlapped group pairs may legally interleave differently
        // (nobody else can observe the difference — the paper's point).
        let rgroups: Vec<GroupId> = m.groups_of(receiver).collect();
        let fully_constrained = rgroups
            .iter()
            .enumerate()
            .all(|(i, &a)| rgroups[i + 1..].iter().all(|&b| m.double_overlapped(a, b)));

        let mut rng = StdRng::seed_from_u64(perm_seed);
        for _ in 0..5 {
            use rand::seq::SliceRandom;
            let mut shuffled = mine.clone();
            shuffled.shuffle(&mut rng);
            let mut q = DeliveryQueue::new(receiver, &m, &graph);
            let got: Vec<Message> = shuffled
                .into_iter()
                .flat_map(|msg| q.offer(msg))
                .collect();
            prop_assert_eq!(got.len(), reference.len(), "liveness under permutation");
            if fully_constrained {
                let got_ids: Vec<MessageId> = got.iter().map(|d| d.id).collect();
                let ref_ids: Vec<MessageId> = reference.iter().map(|d| d.id).collect();
                prop_assert_eq!(got_ids, ref_ids, "permutation changed delivery order");
            }
            // Per-group projection is always fixed by group-local numbers.
            for &g in &rgroups {
                let pg: Vec<MessageId> =
                    got.iter().filter(|d| d.group == g).map(|d| d.id).collect();
                let pr: Vec<MessageId> = reference
                    .iter()
                    .filter(|d| d.group == g)
                    .map(|d| d.id)
                    .collect();
                prop_assert_eq!(pg, pr, "per-group order changed");
            }
        }
    }
}
