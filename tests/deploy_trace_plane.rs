//! The deployment trace plane, end to end (PROTOCOL.md §15): a real
//! multi-process socket cluster with crash injection must (1) serve a
//! live cluster-wide Prometheus scrape whose node families are exactly
//! the merge of the per-node registries and whose counters are monotonic
//! across scrapes, (2) leave per-process JSONL trace logs that join —
//! on the shared UNIX-µs timebase, across a SIGKILL — into complete
//! per-message span trees, and (3) export those spans as valid Chrome
//! `trace_event` JSON.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use seqnet::deploy::{node_registry, DeployCluster};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::obs::span::TraceSet;
use seqnet::obs::{chrome, jsonl, prom, Registry};
use seqnet::runtime::ClusterConfig;

fn seqnet_binary() -> PathBuf {
    option_env!("CARGO_BIN_EXE_seqnet")
        .map(PathBuf::from)
        .or_else(|| std::env::var("SEQNET_BIN").ok().map(PathBuf::from))
        .expect("no seqnet binary for node processes: set SEQNET_BIN")
}

/// The label key the coordinator's exposition uses: node families carry
/// the configuration epoch, coordinator families a group id.
fn label_key(name: &'static str) -> &'static str {
    if name.starts_with("node_") {
        "epoch"
    } else {
        "group"
    }
}

/// Parses `name{labels} value` sample lines into a map, skipping `# TYPE`
/// comments. Good enough to compare scrapes series-by-series.
fn samples(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let (series, value) = l.rsplit_once(' ').expect("sample line");
            (series.to_string(), value.parse().expect("numeric sample"))
        })
        .collect()
}

/// One membership, four sequencing-node processes plus the coordinator —
/// the five-process shape the acceptance criterion names.
fn membership() -> Membership {
    let n = NodeId;
    let g = GroupId;
    Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
        (g(2), vec![n(0), n(3), n(4)]),
    ])
}

#[test]
fn live_scrape_and_span_reconstruction_survive_a_sigkill() {
    let m = membership();
    let config = ClusterConfig {
        seed: 7,
        trace: true,
        ..ClusterConfig::default()
    };
    let mut cluster = DeployCluster::start_with_binary(&m, config, Some(seqnet_binary()))
        .expect("socket cluster starts");

    // First burst: every node publishes into every group it belongs to.
    let publishes: Vec<(NodeId, GroupId)> = m
        .nodes()
        .flat_map(|node| m.groups_of(node).map(move |g| (node, g)).collect::<Vec<_>>())
        .collect();
    let expected: usize = publishes.iter().map(|&(_, g)| m.group_size(g)).sum();
    for &(node, group) in &publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    let first_batch = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .expect("first burst delivers");
    assert_eq!(first_batch.values().map(Vec::len).sum::<usize>(), expected);

    // Scrape #1. wait_for_deliveries pumped the event loop, which primes
    // and then periodically refreshes the per-node telemetry snapshots.
    let scrape1 = cluster.prometheus_text();
    assert!(
        !cluster.telemetry().is_empty(),
        "pumping collected at least one node telemetry snapshot"
    );

    // The merged node registry IS the sum of the per-node registries —
    // same snapshot on both sides, so the expositions are byte-equal.
    let mut expected_reg = Registry::new();
    let epoch = 0;
    for t in cluster.telemetry().values() {
        expected_reg.merge(&node_registry(t, Some(epoch)));
    }
    assert_eq!(
        prom::exposition(&cluster.merged_node_registry(), "seqnet_deploy", label_key),
        prom::exposition(&expected_reg, "seqnet_deploy", label_key),
        "merged scrape diverges from the sum of per-node registries"
    );

    // The health line reports every node up with telemetry attached.
    let health = cluster.health_line();
    assert!(health.contains("epoch=0"), "health line: {health}");
    assert!(!health.contains("no-telemetry"), "health line: {health}");
    assert!(!health.contains(":down"), "health line: {health}");

    // A real SIGKILL mid-run: node 0's next incarnation must recover and
    // the trace plane must keep working across the gap.
    assert!(cluster.kill_node(0), "SIGKILL lands");
    assert!(cluster.respawn_node(0).expect("respawn"), "node 0 respawns");
    for &(node, group) in &publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .expect("post-crash burst delivers");

    // Give the 200ms telemetry poll a chance to refresh every node's
    // snapshot (including the respawned incarnation), then scrape #2.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        // No deliveries are pending, so this just pumps the event loop
        // (and with it the periodic telemetry poll) for 250ms.
        let _ = cluster.next_delivery(Duration::from_millis(250));
        let t = cluster.telemetry();
        if t.len() == cluster.num_sequencing_nodes()
            && t.get(&0).is_some_and(|t0| t0.incarnation > 0)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "respawned node never reported fresh telemetry"
        );
    }
    let scrape2 = cluster.prometheus_text();
    let health = cluster.health_line();
    assert!(health.contains("inc1"), "respawn visible in health: {health}");

    // Counter monotonicity across the two scrapes: node counters reset
    // with the respawned incarnation are allowed to *drop out* only via
    // the merge taking the fresh snapshot — but every coordinator-side
    // counter and the overall publish/delivery counters only grow.
    let (s1, s2) = (samples(&scrape1), samples(&scrape2));
    for (series, &v1) in &s1 {
        if series.contains("node_") {
            continue; // per-node counters restart at a SIGKILL, by design
        }
        let v2 = s2.get(series).copied().unwrap_or_else(|| {
            panic!("series {series} vanished between scrapes")
        });
        assert!(
            v2 >= v1,
            "counter {series} went backwards across scrapes: {v1} -> {v2}"
        );
    }
    assert!(
        s2.get("seqnet_deploy_publishes_steady_total").copied() >= Some(2.0 * expected_sent(&publishes)),
        "steady publish counter covers both bursts"
    );
    assert!(
        s2.get("seqnet_deploy_crashes_total").copied() >= Some(1.0),
        "the SIGKILL shows up in the scrape"
    );

    let stats = cluster.shutdown();
    assert_eq!(stats.recovery.crashes, 1, "exactly one real SIGKILL");

    // Span reconstruction: join the coordinator's trace with every node
    // process's incremental JSONL log (flushed line-by-line, so readable
    // even for the SIGKILLed incarnation) on the shared UNIX-µs timebase.
    let mut events = cluster.trace_events();
    let mut node_logs = 0;
    for idx in 0..cluster.num_sequencing_nodes() {
        let path = cluster.dir().join(format!("node{idx}.obs.jsonl"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        node_logs += 1;
        events.extend(jsonl::parse_jsonl_lines(&text).expect("node obs log parses"));
    }
    assert!(node_logs > 0, "node processes wrote obs logs");

    let set = TraceSet::from_events(&events);
    assert_eq!(set.len(), 2 * publishes.len(), "one span tree per publish");
    assert_eq!(
        set.incomplete(),
        0,
        "every delivery reconstructs complete across the SIGKILL"
    );
    let b = set.breakdown_histograms();
    assert_eq!(b.complete, 2 * expected as u64);
    assert_eq!(
        b.stamp_wait.sum() + b.wire.sum() + b.group_gap_wait.sum() + b.atom_gap_wait.sum(),
        b.end_to_end.sum(),
        "decomposition sums to end-to-end across processes"
    );

    // And the whole set exports as valid Chrome trace JSON.
    let json = chrome::export(&set);
    chrome::validate(&json).expect("chrome trace validates");
}

/// The number of publishes in one burst (the steady counter counts
/// publishes accepted, not fan-out deliveries).
fn expected_sent(publishes: &[(NodeId, GroupId)]) -> f64 {
    publishes.len() as f64
}
