//! Network-level ordering-overhead accounting: the engine integrates the
//! §4.4 per-message metadata over every hop it actually crosses.

use seqnet::baseline::vector_timestamp_bytes;
use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

#[test]
fn overhead_counts_hops_and_copies() {
    // One group without overlaps: a message carries 8 bytes (group number
    // only) and crosses no inter-atom hop, so overhead = 8 * members.
    let m = Membership::from_groups([(g(0), vec![n(0), n(1), n(2)])]);
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(n(0), g(0), vec![]).unwrap();
    bus.run_to_quiescence();
    assert_eq!(bus.ordering_overhead_bytes(), 8 * 3);
}

#[test]
fn overhead_grows_with_stamps_and_path() {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(n(0), g(0), vec![]).unwrap();
    bus.run_to_quiescence();
    // One overlap atom stamps the message (8 + 12 bytes); the single-atom
    // path has no inter-atom hop; three copies at distribution.
    assert_eq!(bus.ordering_overhead_bytes(), 20 * 3);
}

#[test]
fn stays_below_vector_timestamps_on_realistic_workloads() {
    use rand::{rngs::StdRng, SeedableRng};
    use seqnet::membership::workload::ZipfGroups;
    let mut rng = StdRng::seed_from_u64(4);
    let num_nodes = 64;
    let m = ZipfGroups::new(num_nodes, 16).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::new(&m);
    let mut copies = 0u64;
    for node in m.nodes().collect::<Vec<_>>() {
        for group in m.groups_of(node).collect::<Vec<_>>() {
            bus.publish(node, group, vec![]).unwrap();
            copies += m.group_size(group) as u64;
        }
    }
    bus.run_to_quiescence();
    let ours = bus.ordering_overhead_bytes();
    // A vector-timestamp scheme carries 8*N bytes on at least every
    // distribution copy (ignoring its inter-node traffic entirely).
    let vector_floor = vector_timestamp_bytes(num_nodes) as u64 * copies;
    assert!(
        ours < vector_floor,
        "sequencing overhead {ours}B should undercut the vector floor {vector_floor}B"
    );
}
