//! Error paths of quiescent reconfiguration and the dynamic facade.

use seqnet::core::{CoreError, DynamicOrderedPubSub, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

fn base_membership() -> Membership {
    Membership::from_groups([(g(0), vec![n(0), n(1)])])
}

#[test]
fn reconfigure_rejects_pending_events() {
    let m = base_membership();
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(n(0), g(0), vec![]).unwrap();
    // Do NOT drain: events are pending.
    let err = bus
        .reconfigure(&m, GraphBuilder::new().build(&m))
        .unwrap_err();
    match err {
        CoreError::NotQuiescent { pending_events, .. } => assert!(pending_events > 0),
        other => panic!("expected NotQuiescent, got {other}"),
    }
    // Draining first makes the same reconfiguration legal.
    bus.run_to_quiescence();
    bus.reconfigure(&m, GraphBuilder::new().build(&m)).unwrap();
}

#[test]
fn reconfigure_rejects_graphs_missing_paths() {
    let m = base_membership();
    let mut bus = OrderedPubSub::new(&m);
    let mut grown = m.clone();
    grown.subscribe(n(2), g(1));
    grown.subscribe(n(3), g(1));
    // Graph built for the OLD membership has no path for the new group.
    let stale_graph = GraphBuilder::new().build(&m);
    let err = bus.reconfigure(&grown, stale_graph).unwrap_err();
    assert!(matches!(err, CoreError::InvalidGraph(_)), "{err}");
}

#[test]
fn reconfigure_to_grown_membership_works() {
    let m = base_membership();
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(n(0), g(0), vec![]).unwrap();
    bus.run_to_quiescence();

    let mut grown = m.clone();
    grown.subscribe(n(0), g(1));
    grown.subscribe(n(1), g(1));
    bus.reconfigure(&grown, GraphBuilder::new().build(&grown))
        .unwrap();

    bus.publish(n(0), g(0), vec![]).unwrap();
    bus.publish(n(1), g(1), vec![]).unwrap();
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);
    assert_eq!(bus.delivered(n(0)).len(), 3);
    // Order agreement survives the reconfiguration.
    let o0: Vec<_> = bus.delivered(n(0)).iter().map(|d| d.id).collect();
    let o1: Vec<_> = bus.delivered(n(1)).iter().map(|d| d.id).collect();
    assert_eq!(o0, o1);
}

/// ISSUE 8 satellite regression: the quiescent reconfigure path must
/// return a structured error — never silently rebuild — when invoked
/// with messages in flight, and a staged online handoff blocks further
/// configuration changes with [`CoreError::ReconfigPending`].
#[test]
fn quiescent_reconfigure_is_rejected_while_a_handoff_is_pending() {
    let m = base_membership();
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(n(0), g(0), vec![]).unwrap();

    let mut grown = m.clone();
    grown.subscribe(n(2), g(0));
    assert_eq!(
        bus.begin_reconfigure(&grown, GraphBuilder::new().build(&grown))
            .unwrap(),
        1
    );
    // Both the quiescent path and a second online staging are refused
    // while the handoff is pending, naming the epoch that is on its way.
    let err = bus
        .reconfigure(&grown, GraphBuilder::new().build(&grown))
        .unwrap_err();
    assert_eq!(err, CoreError::ReconfigPending { next_epoch: 1 });
    let err = bus
        .begin_reconfigure(&grown, GraphBuilder::new().build(&grown))
        .unwrap_err();
    assert_eq!(err, CoreError::ReconfigPending { next_epoch: 1 });

    bus.run_to_quiescence();
    assert!(!bus.reconfig_pending());
    assert_eq!(bus.epoch(), 1);
}

/// The dynamic facade surfaces the same structured error with in-flight
/// counts, and a rejected change leaves the membership untouched.
#[test]
fn dynamic_facade_returns_not_quiescent_with_counts() {
    let mut bus = DynamicOrderedPubSub::new();
    bus.join(n(0), g(0)).unwrap();
    bus.join(n(1), g(0)).unwrap();
    bus.publish(n(0), g(0), vec![]).unwrap();

    let err = bus.join(n(2), g(0)).unwrap_err();
    match err {
        CoreError::NotQuiescent {
            pending_events,
            buffered_messages,
        } => {
            assert!(pending_events > 0 || buffered_messages > 0);
        }
        other => panic!("expected NotQuiescent, got {other}"),
    }
    assert!(
        !bus.membership().is_member(n(2), g(0)),
        "a rejected join must not mutate the membership"
    );

    bus.run_to_quiescence();
    bus.join(n(2), g(0)).unwrap();
    assert!(bus.membership().is_member(n(2), g(0)));
}

#[test]
fn reconfigure_drops_departed_subscribers() {
    let m = Membership::from_groups([(g(0), vec![n(0), n(1), n(2)])]);
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(n(0), g(0), vec![]).unwrap();
    bus.run_to_quiescence();

    let mut shrunk = Membership::from_groups([(g(0), vec![n(0), n(1)])]);
    bus.reconfigure(&shrunk, GraphBuilder::new().build(&shrunk))
        .unwrap();
    bus.publish(n(0), g(0), vec![]).unwrap();
    bus.run_to_quiescence();
    assert_eq!(bus.delivered(n(2)).len(), 1, "history kept, no new messages");
    assert_eq!(bus.delivered(n(0)).len(), 2);
    // Re-joining later restarts from "now".
    shrunk.subscribe(n(2), g(0));
    bus.reconfigure(&shrunk, GraphBuilder::new().build(&shrunk))
        .unwrap();
    bus.publish(n(1), g(0), vec![]).unwrap();
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);
    assert_eq!(bus.delivered(n(2)).len(), 2);
}
