//! API-guideline conformance checks: key public types are `Send`/`Sync`
//! (usable across threads and in `Arc`), implement the common traits, and
//! error types behave like errors.

use seqnet::prelude::*;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}
fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn core_types_are_send_sync() {
    assert_send_sync::<Membership>();
    assert_send_sync::<SequencingGraph>();
    assert_send_sync::<Message>();
    assert_send_sync::<DeliveryRecord>();
    // Engines are Send (movable into worker threads; see the test below);
    // share one across threads behind a mutex if needed.
    assert_send::<OrderedPubSub>();
    assert_send::<DynamicOrderedPubSub>();
    assert_send_sync::<NetworkSetup>();
    assert_send_sync::<seqnet::core::ProtocolState>();
    assert_send_sync::<seqnet::core::DeliveryQueue>();
    assert_send_sync::<seqnet::overlap::Colocation>();
    assert_send_sync::<seqnet::overlap::Placement>();
    assert_send_sync::<seqnet::topology::Graph>();
    assert_send_sync::<seqnet::topology::Topology>();
    assert_send_sync::<seqnet::sim::SimTime>();
    assert_send_sync::<seqnet::baseline::CausalBroadcast>();
    assert_send_sync::<seqnet::runtime::RuntimeStats>();
}

#[test]
fn error_types_are_well_behaved() {
    assert_error::<CoreError>();
    assert_error::<seqnet::overlap::GraphError>();
    assert_error::<seqnet::runtime::RuntimeError>();
    // Display messages are lowercase and unpunctuated (C-GOOD-ERR).
    let msg = CoreError::UnknownGroup(GroupId(1)).to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));
}

#[test]
fn value_types_have_common_traits() {
    assert_clone_debug::<NodeId>();
    assert_clone_debug::<GroupId>();
    assert_clone_debug::<MessageId>();
    assert_clone_debug::<SimTime>();
    assert_clone_debug::<seqnet::overlap::AtomId>();
    assert_clone_debug::<seqnet::topology::RouterId>();
    assert_clone_debug::<seqnet::topology::Delay>();
    assert_clone_debug::<seqnet::core::SeqNo>();
    assert_clone_debug::<seqnet::core::Stamp>();

    // Ids are ordered and hashable for use as map keys.
    fn assert_ord_hash<T: Ord + std::hash::Hash>() {}
    assert_ord_hash::<NodeId>();
    assert_ord_hash::<GroupId>();
    assert_ord_hash::<MessageId>();
    assert_ord_hash::<seqnet::overlap::AtomId>();
    assert_ord_hash::<seqnet::topology::RouterId>();
    assert_ord_hash::<seqnet::topology::Delay>();
    assert_ord_hash::<SimTime>();
}

#[test]
fn display_is_compact_and_nonempty() {
    // C-DEBUG-NONEMPTY / useful Display forms for ids.
    assert_eq!(NodeId(3).to_string(), "N3");
    assert_eq!(GroupId(4).to_string(), "G4");
    assert_eq!(MessageId(5).to_string(), "m5");
    assert_eq!(seqnet::overlap::AtomId(6).to_string(), "Q6");
    assert_eq!(seqnet::topology::RouterId(7).to_string(), "R7");
    assert!(!format!("{:?}", Membership::new()).is_empty());
    assert!(!format!("{:?}", SequencingGraph::default()).is_empty());
}

#[test]
fn engine_can_move_across_threads() {
    // The simulation engine itself is Send: build on one thread, run on
    // another (common in test harnesses and parallel sweeps).
    let m = Membership::from_groups([(GroupId(0), vec![NodeId(0), NodeId(1)])]);
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(NodeId(0), GroupId(0), vec![]).unwrap();
    let handle = std::thread::spawn(move || {
        bus.run_to_quiescence();
        bus.delivered(NodeId(1)).len()
    });
    assert_eq!(handle.join().unwrap(), 1);
}
