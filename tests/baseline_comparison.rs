//! Cross-checks between the decentralized protocol and the baselines: the
//! paper's load and overhead arguments (§1.2, §2, §4.4), verified.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::baseline::{vector_timestamp_bytes, CentralDelays, CentralSequencer};
use seqnet::core::OrderedPubSub;
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::sim::SimTime;

fn workload(m: &Membership) -> Vec<(NodeId, GroupId)> {
    let mut out = Vec::new();
    for node in m.nodes() {
        for group in m.groups_of(node) {
            out.push((node, group));
        }
    }
    out
}

#[test]
fn both_systems_deliver_the_same_message_sets() {
    let mut rng = StdRng::seed_from_u64(1);
    let m = ZipfGroups::new(16, 6).with_min_size(2).sample(&mut rng);

    let mut decentralized = OrderedPubSub::new(&m);
    let mut central = CentralSequencer::new(&m, CentralDelays::Uniform(SimTime::from_ms(1.0)));
    for (sender, group) in workload(&m) {
        decentralized.publish(sender, group, vec![]).unwrap();
        central.publish(sender, group, 0).unwrap();
    }
    decentralized.run_to_quiescence();
    central.run_to_quiescence();

    for node in m.nodes().collect::<Vec<_>>() {
        let mut a: Vec<_> = decentralized.delivered(node).iter().map(|d| d.id).collect();
        let mut b: Vec<_> = central.delivered(node).iter().map(|d| d.id).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{node} delivered different message sets");
    }
}

#[test]
fn central_sequencer_load_exceeds_decentralized_stamping_load() {
    // §1.2: "sequencing atoms order no more messages than the most active
    // receiver", while a central sequencer orders *all* messages.
    let mut rng = StdRng::seed_from_u64(2);
    let m = ZipfGroups::new(32, 12).with_min_size(2).sample(&mut rng);

    let mut decentralized = OrderedPubSub::new(&m);
    let mut central = CentralSequencer::new(&m, CentralDelays::Uniform(SimTime::from_ms(1.0)));
    let jobs = workload(&m);
    let total = jobs.len() as u64;
    for (sender, group) in jobs {
        decentralized.publish(sender, group, vec![]).unwrap();
        central.publish(sender, group, 0).unwrap();
    }
    decentralized.run_to_quiescence();
    central.run_to_quiescence();

    assert_eq!(central.sequencer_load(), total);
    let max_stamp = decentralized
        .atom_stamp_loads()
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    assert!(
        max_stamp < total,
        "decentralized hot spot {max_stamp} should be below total {total}"
    );
    let max_receiver = decentralized
        .receiver_loads()
        .values()
        .copied()
        .max()
        .unwrap_or(0);
    assert!(max_stamp <= max_receiver, "scalability bound violated");
}

#[test]
fn stamp_overhead_below_vector_timestamps_when_nodes_exceed_groups() {
    // §4.4: "our sequencer-based approach is attractive whenever the
    // number of nodes exceeds the number of groups": stamps per message
    // are bounded by the number of groups, vector timestamps cost 8 bytes
    // per *node*.
    let mut rng = StdRng::seed_from_u64(3);
    let num_nodes = 64;
    let num_groups = 12;
    let m = ZipfGroups::new(num_nodes, num_groups)
        .with_min_size(2)
        .sample(&mut rng);
    let graph = GraphBuilder::new().build(&m);

    let vector_bytes = vector_timestamp_bytes(num_nodes);
    for group in m.groups().collect::<Vec<_>>() {
        let stamps = graph.stampers(group).len();
        assert!(stamps < num_groups, "stamps bounded by group count");
        let stamp_bytes = 8 + stamps * 12;
        assert!(
            stamp_bytes < vector_bytes,
            "{group}: stamp bytes {stamp_bytes} >= vector bytes {vector_bytes}"
        );
    }
}

#[test]
fn central_total_order_is_stricter_than_needed() {
    // The central sequencer orders even messages to disjoint groups; the
    // decentralized scheme deliberately does not ("messages to unrelated
    // groups may be delivered in any order", §1.2). Both are *consistent*;
    // the decentralized one just promises less.
    let m = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1)]),
        (GroupId(1), vec![NodeId(2), NodeId(3)]),
    ]);
    let mut bus = OrderedPubSub::new(&m);
    bus.publish(NodeId(0), GroupId(0), vec![]).unwrap();
    bus.publish(NodeId(2), GroupId(1), vec![]).unwrap();
    bus.run_to_quiescence();
    // Disjoint groups: no overlap atoms at all.
    assert_eq!(bus.graph().num_overlap_atoms(), 0);
    assert_eq!(bus.all_deliveries().count(), 4);
}

#[test]
fn gm_tree_detours_disjoint_groups_through_the_root() {
    // Two disjoint groups: seqnet orders them independently (no overlap
    // atoms, direct paths); the Garcia-Molina tree still funnels both
    // through its root, adding hops for unrelated traffic.
    use seqnet::baseline::PropagationTree;
    use seqnet::sim::SimTime;

    let m = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1)]),
        (GroupId(1), vec![NodeId(2), NodeId(3)]),
    ]);
    let mut gm = PropagationTree::new(&m, SimTime::from_ms(1.0));
    let mut bus = OrderedPubSub::new(&m);
    for i in 0..6u32 {
        let grp = GroupId(i % 2);
        let sender = m.members(grp).next().unwrap();
        gm.publish(sender, grp).unwrap();
        bus.publish(sender, grp, vec![]).unwrap();
    }
    gm.run_to_quiescence();
    bus.run_to_quiescence();

    let mean = |records: Vec<f64>| records.iter().sum::<f64>() / records.len() as f64;
    let gm_latency = mean(
        gm.all_deliveries()
            .map(|d| (d.delivered - d.published).as_ms())
            .collect(),
    );
    let seq_latency = mean(
        bus.all_deliveries()
            .map(|d| (d.delivered - d.published).as_ms())
            .collect(),
    );
    // The root of the G-M tree sequences everything.
    assert_eq!(gm.forward_loads()[&gm.root()], 6);
    // seqnet built no overlap atoms at all for disjoint groups.
    assert_eq!(bus.graph().num_overlap_atoms(), 0);
    assert!(
        gm_latency >= seq_latency,
        "G-M {gm_latency}ms should not beat independent sequencing {seq_latency}ms"
    );
}
