//! The bounded model-checking configuration matrix, run on every `cargo
//! test` (CI runs the same matrix through the `seqnet-check` binary).
//!
//! Exhaustively explores every registry scenario — four topologies, each
//! fault-free and with a crash window, plus the group-commit variants —
//! under all five invariant oracles, and proves the counterexample
//! pipeline works end to end by checking a deliberately sabotaged core:
//! explore → fail → shrink → replay must reproduce the same violation
//! from a short decision list.

use seqnet_check::{
    default_oracles, explore, replay, scenario, shrink, ExploreConfig, Outcome,
};

/// Every scenario in the registry passes bounded-exhaustive exploration
/// without truncation: all five oracles hold on every reachable schedule.
#[test]
fn registry_matrix_is_exhaustively_clean() {
    for sc in scenario::registry() {
        let outcome = explore(&sc, &default_oracles(), &ExploreConfig::default());
        match outcome {
            Outcome::Pass(stats) => {
                assert!(
                    !stats.truncated,
                    "{}: exploration truncated at {} states — raise the bound \
                     or shrink the scenario",
                    sc.name, stats.states
                );
                assert!(stats.terminals > 0, "{}: no terminal state reached", sc.name);
            }
            Outcome::Fail(cex) => panic!(
                "{}: invariant violated: {}\n  trace: {}",
                sc.name, cex.violation, cex.trace
            ),
        }
    }
}

/// The acceptance configuration (2 groups, 1 double overlap, 2 common
/// receivers) with sabotaged group-commit staging: exploration finds the
/// staged-output violation, shrinking compresses it to at most 15
/// decisions, and replaying the shrunk trace reproduces the identical
/// violation.
#[test]
fn sabotaged_core_yields_short_replayable_counterexample() {
    let sc = scenario::two_group_overlap().with_sabotaged_staging();
    let oracles = default_oracles();
    let outcome = explore(&sc, &oracles, &ExploreConfig::default());
    let Outcome::Fail(cex) = outcome else {
        panic!("sabotaged staging must violate the staged-output oracle")
    };
    assert_eq!(cex.violation.invariant, "staged-output");

    let shrunk = shrink(&sc, &oracles, &cex.trace);
    assert!(
        shrunk.len() <= 15,
        "shrunk counterexample exceeds the acceptance bound: {shrunk}"
    );

    let res = replay(&sc, &oracles, &shrunk.decisions);
    let violation = res.violation.expect("shrunk trace still fails");
    assert_eq!(violation.invariant, cex.violation.invariant);
    assert_eq!(res.executed, shrunk.decisions, "shrunk trace is canonical");
}

/// Oracles also hold along seeded random walks with randomized crash
/// injection — the mode CI uses to reach schedules past the exhaustive
/// depth bound.
#[test]
fn random_walks_with_fault_injection_stay_clean() {
    use seqnet_check::{random_walks, RandomConfig};
    let config = RandomConfig {
        walks: 16,
        max_steps: 256,
        randomize_faults: true,
    };
    for sc in [scenario::two_group_overlap(), scenario::disjoint_chain()] {
        let outcome = random_walks(&sc, &default_oracles(), 0xC0FFEE, &config);
        if let Some(cex) = outcome.counterexample() {
            panic!("{}: random walk violation: {}", sc.name, cex.violation);
        }
    }
}
