//! The bounded model-checking configuration matrix, run on every `cargo
//! test` (CI runs the same matrix through the `seqnet-check` binary).
//!
//! Exhaustively explores every registry scenario — four topologies, each
//! fault-free and with a crash window, plus the group-commit variants —
//! under all six invariant oracles (including the `batch-vs-step`
//! differential oracle, which re-executes every explored edge through the
//! batched core fast path and demands equivalence with per-event
//! stepping), and proves the counterexample pipeline works end to end by
//! checking a deliberately sabotaged core: explore → fail → shrink →
//! replay must reproduce the same violation from a short decision list.

use seqnet_check::{
    default_oracles, explore, replay, scenario, shrink, ExploreConfig, Outcome,
};

/// Every scenario in the registry passes bounded-exhaustive exploration
/// without truncation: all six oracles hold on every reachable schedule.
#[test]
fn registry_matrix_is_exhaustively_clean() {
    for sc in scenario::registry() {
        let outcome = explore(&sc, &default_oracles(), &ExploreConfig::default());
        match outcome {
            Outcome::Pass(stats) => {
                assert!(
                    !stats.truncated,
                    "{}: exploration truncated at {} states — raise the bound \
                     or shrink the scenario",
                    sc.name, stats.states
                );
                assert!(stats.terminals > 0, "{}: no terminal state reached", sc.name);
            }
            Outcome::Fail(cex) => panic!(
                "{}: invariant violated: {}\n  trace: {}",
                sc.name, cex.violation, cex.trace
            ),
        }
    }
}

/// The acceptance configuration (2 groups, 1 double overlap, 2 common
/// receivers) with sabotaged group-commit staging: exploration finds the
/// staged-output violation, shrinking compresses it to at most 15
/// decisions, and replaying the shrunk trace reproduces the identical
/// violation.
#[test]
fn sabotaged_core_yields_short_replayable_counterexample() {
    let sc = scenario::two_group_overlap().with_sabotaged_staging();
    let oracles = default_oracles();
    let outcome = explore(&sc, &oracles, &ExploreConfig::default());
    let Outcome::Fail(cex) = outcome else {
        panic!("sabotaged staging must violate the staged-output oracle")
    };
    assert_eq!(cex.violation.invariant, "staged-output");

    let shrunk = shrink(&sc, &oracles, &cex.trace);
    assert!(
        shrunk.len() <= 15,
        "shrunk counterexample exceeds the acceptance bound: {shrunk}"
    );

    let res = replay(&sc, &oracles, &shrunk.decisions);
    let violation = res.violation.expect("shrunk trace still fails");
    assert_eq!(violation.invariant, cex.violation.invariant);
    assert_eq!(res.executed, shrunk.decisions, "shrunk trace is canonical");
}

/// The default battery registers the `batch-vs-step` oracle, so
/// `seqnet-check --all` (which runs this battery) fails if batched and
/// stepped execution diverge on any explored schedule — and the matrix
/// above therefore re-proves PROTOCOL.md §12 on every edge it visits.
#[test]
fn batch_vs_step_oracle_is_registered_and_bites() {
    use seqnet_check::{BatchVsStep, Invariant, Transition, World};
    assert!(
        default_oracles().iter().any(|o| o.name() == "batch-vs-step"),
        "default battery must register the differential oracle"
    );
    // And it actually exercises the batched path: checking an edge leaves
    // the caller's world untouched while validating the transition.
    let sc = scenario::two_group_overlap().with_group_commit();
    let world = World::new(&sc);
    let before = world.state_hash();
    BatchVsStep
        .check_edge(&world, Transition::Publish(0))
        .expect("honest edge passes");
    assert_eq!(world.state_hash(), before, "check_edge is side-effect free");
}

/// Oracles also hold along seeded random walks with randomized crash
/// injection — the mode CI uses to reach schedules past the exhaustive
/// depth bound.
#[test]
fn random_walks_with_fault_injection_stay_clean() {
    use seqnet_check::{random_walks, RandomConfig};
    let config = RandomConfig {
        walks: 16,
        max_steps: 256,
        randomize_faults: true,
    };
    for sc in [scenario::two_group_overlap(), scenario::disjoint_chain()] {
        let outcome = random_walks(&sc, &default_oracles(), 0xC0FFEE, &config);
        if let Some(cex) = outcome.counterexample() {
            panic!("{}: random walk violation: {}", sc.name, cex.violation);
        }
    }
}
