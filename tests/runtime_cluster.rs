//! Integration tests of the threaded deployment under load and loss.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};
use std::collections::BTreeMap;
use std::time::Duration;

fn assert_pairwise_agreement(
    m: &Membership,
    deliveries: &BTreeMap<NodeId, Vec<seqnet::core::Message>>,
) {
    let nodes: Vec<NodeId> = m.nodes().collect();
    let empty = Vec::new();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let da: Vec<_> = deliveries.get(&a).unwrap_or(&empty).iter().map(|x| x.id).collect();
            let db: Vec<_> = deliveries.get(&b).unwrap_or(&empty).iter().map(|x| x.id).collect();
            let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
            let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "{a} and {b} disagree");
        }
    }
}

#[test]
fn zipf_workload_over_threads() {
    let mut rng = StdRng::seed_from_u64(31);
    let m = ZipfGroups::new(12, 5).with_min_size(2).sample(&mut rng);
    let mut cluster = Cluster::start(&m, ClusterConfig::default());

    let mut expected = 0usize;
    for node in m.nodes().collect::<Vec<_>>() {
        for group in m.groups_of(node).collect::<Vec<_>>() {
            cluster.publish(node, group, vec![]).unwrap();
            expected += m.group_size(group);
        }
    }
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .unwrap();
    assert_pairwise_agreement(&m, &deliveries);
    cluster.shutdown();
}

#[test]
fn heavy_loss_still_converges_consistently() {
    let m = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
        (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
        (GroupId(2), vec![NodeId(2), NodeId(3), NodeId(0)]),
    ]);
    let config = ClusterConfig {
        drop_probability: 0.4,
        retransmit_timeout: Duration::from_millis(4),
        seed: 9,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m, config);
    let mut expected = 0usize;
    for i in 0..12u32 {
        let group = GroupId(i % 3);
        let sender = m.members(group).next().unwrap();
        cluster.publish(sender, group, vec![i as u8]).unwrap();
        expected += m.group_size(group);
    }
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    assert_pairwise_agreement(&m, &deliveries);
    cluster.shutdown();
    let stats = cluster.stats();
    assert!(stats.frames_dropped > 0);
    assert!(stats.retransmissions >= stats.frames_dropped / 2, "retransmissions recovered the drops");
}

#[test]
fn payloads_survive_the_pipeline() {
    let m = Membership::from_groups([(GroupId(0), vec![NodeId(0), NodeId(1)])]);
    let mut cluster = Cluster::start(&m, ClusterConfig::default());
    for i in 0..5u8 {
        cluster
            .publish(NodeId(0), GroupId(0), vec![i, i + 1, i + 2])
            .unwrap();
    }
    let deliveries = cluster
        .wait_for_deliveries(10, Duration::from_secs(10))
        .unwrap();
    for msgs in deliveries.values() {
        for (i, msg) in msgs.iter().enumerate() {
            let i = i as u8;
            assert_eq!(msg.payload.as_ref(), &[i, i + 1, i + 2]);
        }
    }
    cluster.shutdown();
}

#[test]
fn sequencing_matches_simulation_order_sets() {
    // The threaded deployment and the simulator run the same state
    // machines: for the same membership and publish multiset, each node's
    // delivered message *set* matches (orders may differ across groups
    // without overlap constraints, so compare sets).
    let mut rng = StdRng::seed_from_u64(17);
    let m = ZipfGroups::new(10, 4).with_min_size(2).sample(&mut rng);

    let mut sim = seqnet::core::OrderedPubSub::new(&m);
    let mut cluster = Cluster::start(&m, ClusterConfig::default());
    let mut expected = 0usize;
    for node in m.nodes().collect::<Vec<_>>() {
        for group in m.groups_of(node).collect::<Vec<_>>() {
            sim.publish(node, group, vec![]).unwrap();
            cluster.publish(node, group, vec![]).unwrap();
            expected += m.group_size(group);
        }
    }
    sim.run_to_quiescence();
    let threaded = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .unwrap();
    cluster.shutdown();

    for node in m.nodes().collect::<Vec<_>>() {
        let mut a: Vec<u64> = sim.delivered(node).iter().map(|d| d.id.0).collect();
        let mut b: Vec<u64> = threaded
            .get(&node)
            .map(|v| v.iter().map(|x| x.id.0).collect())
            .unwrap_or_default();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{node} sets differ");
    }
}
