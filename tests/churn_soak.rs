//! Churn soak of the threaded runtime: ~30 seconds of open-loop
//! publishing while the configuration churns — a node repeatedly joins
//! and leaves a group through epoch-stamped online reconfigurations
//! (PROTOCOL.md §14), with traffic parked and injected across every
//! handoff. Ignored by default — CI's nightly-style `soak` job runs it
//! explicitly with `cargo test --test churn_soak -- --ignored`.
//!
//! What it proves, at a duration and a churn rate the per-commit tests
//! never reach:
//!
//! * **Zero stalled handoffs**: every `begin_reconfigure` /
//!   `complete_reconfigure` cycle activates its epoch under live load —
//!   the drain rule never wedges.
//! * **No loss / no duplication**: every publish reaches exactly the
//!   audience of the epoch it was sequenced under, across dozens of
//!   configuration swaps.
//! * **Order agreement**: any two hosts agree on the relative order of
//!   their common messages for the whole run, epoch boundaries included.
//! * **Monotone epochs**: no host ever observes an epoch run backwards.
//! * **Bounded parking**: the per-handoff parked-publish backlog stays
//!   proportional to publish rate × drain time, never unbounded.
//!
//! `SEQNET_SOAK_SECS` overrides the soak duration (e.g. `=5` for a quick
//! local sanity pass); the default is the nightly 30.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

/// The configuration pair the soak oscillates between: node 4 is out of
/// g1 in the even epochs and in it for the odd ones.
fn membership(joined: bool) -> Membership {
    let mut g1 = vec![n(1), n(2), n(3)];
    if joined {
        g1.push(n(4));
    }
    Membership::from_groups([(g(0), vec![n(0), n(1), n(2)]), (g(1), g1)])
}

#[test]
#[ignore = "~30s churn soak; run explicitly or via the nightly soak CI job"]
fn sustained_churn_never_stalls_or_drops() {
    let soak_secs: u64 = std::env::var("SEQNET_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let mut current = membership(false);
    let mut cluster = Cluster::start(
        &current,
        ClusterConfig {
            seed: 0xC1124_2026,
            ..ClusterConfig::default()
        },
    );

    let rate_hz = 120.0;
    let period = Duration::from_secs_f64(1.0 / rate_hz);
    let churn_period = Duration::from_millis(1_500);
    let start = Instant::now();
    let end = start + Duration::from_secs(soak_secs);

    let mut deliveries: BTreeMap<NodeId, Vec<(u64, u64)>> = BTreeMap::new();
    let mut published = 0u64;
    let mut expected = 0usize;
    let mut received = 0usize;
    let mut next_pub = start;
    let mut next_churn = start + churn_period;
    let mut cycles = 0u64;
    let mut max_parked = 0usize;
    let mut joined = false;

    while Instant::now() < end {
        let now = Instant::now();
        if now >= next_churn {
            // One full handoff per churn tick: stage the flip, push a
            // small burst into the handoff window so parking is
            // exercised every cycle, then complete. A generous drain
            // timeout means any stall fails the test loudly instead of
            // silently skipping the cycle.
            joined = !joined;
            let next = membership(joined);
            let activating = cluster
                .begin_reconfigure(&next)
                .expect("no overlapping handoffs in this schedule");
            assert_eq!(activating, cycles + 1, "epochs advance one at a time");
            for _ in 0..3 {
                let group = g((published % 2) as u32);
                cluster
                    .publish(n(1), group, published.to_le_bytes().to_vec())
                    .unwrap();
                expected += next.group_size(group);
                published += 1;
            }
            max_parked = max_parked.max(cluster.parked_publishes());
            let activated = cluster
                .complete_reconfigure(Duration::from_secs(30))
                .expect("handoff drained under live load");
            assert_eq!(activated, cycles + 1);
            cycles += 1;
            current = next;
            next_churn += churn_period;
            continue;
        }
        if now >= next_pub {
            let group = g((published % 2) as u32);
            cluster
                .publish(n(1), group, published.to_le_bytes().to_vec())
                .unwrap();
            expected += current.group_size(group);
            published += 1;
            next_pub += period;
            continue;
        }
        if let Some((host, msg)) = cluster.next_delivery(next_pub - now) {
            deliveries.entry(host).or_default().push((msg.id.0, msg.epoch));
            received += 1;
        }
    }
    assert!(cycles >= 2, "soak too short to churn: {cycles} cycles");
    assert_eq!(cluster.epoch(), cycles, "every staged handoff activated");
    assert!(!cluster.reconfig_pending(), "no handoff left dangling");

    // Tail drain.
    let deadline = Instant::now() + Duration::from_secs(60);
    while received < expected && Instant::now() < deadline {
        if let Some((host, msg)) = cluster.next_delivery(Duration::from_millis(50)) {
            deliveries.entry(host).or_default().push((msg.id.0, msg.epoch));
            received += 1;
        }
    }
    cluster.shutdown();

    // No loss.
    assert_eq!(
        received, expected,
        "lost deliveries across {cycles} reconfigurations: \
         {published} published, {received}/{expected} received"
    );
    // No duplication, and epochs never run backwards at any host.
    for (host, log) in &deliveries {
        let mut ids: Vec<u64> = log.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "host {host:?} saw duplicate deliveries");
        for pair in log.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "host {host:?} saw epoch {} after {}",
                pair[1].1,
                pair[0].1
            );
        }
    }
    // Order agreement on common messages, every pair of hosts.
    let hosts: Vec<NodeId> = deliveries.keys().copied().collect();
    for (i, &a) in hosts.iter().enumerate() {
        for &b in &hosts[i + 1..] {
            let da: Vec<u64> = deliveries[&a].iter().map(|&(id, _)| id).collect();
            let db: Vec<u64> = deliveries[&b].iter().map(|&(id, _)| id).collect();
            let ca: Vec<u64> = da.iter().copied().filter(|x| db.contains(x)).collect();
            let cb: Vec<u64> = db.iter().copied().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "hosts {a:?} and {b:?} disagree on common order");
        }
    }
    // Bounded parking: each handoff window parks its own 3-publish burst
    // plus whatever the open-loop publisher slipped in before the drain
    // finished — a small constant, not a backlog that grows with the run.
    assert!(
        max_parked <= 32,
        "parked backlog grew out of bounds: {max_parked}"
    );
    // The joiner really participated: it delivered in the odd epochs.
    assert!(
        deliveries.contains_key(&n(4)),
        "the churning node never delivered anything"
    );
}
