//! Shared proptest strategies for the workspace-level test suites.
//!
//! Thin [`Strategy`] adapters over the seeded generators in
//! `seqnet::core::proto::testing`: proptest explores and shrinks a single
//! `u64` seed while the generator guarantees structural validity, so every
//! reported failure reproduces from one number. Included as `mod
//! strategies;` by `property_ordering.rs` and `fault_recovery.rs`; also a
//! test target of its own, so its `#[test]`s keep the adapters honest.

// Each including test binary uses a subset of these adapters.
#![allow(dead_code)]

use proptest::prelude::*;
use seqnet::core::proto::testing;
pub use seqnet::core::proto::testing::MembershipBounds;
use seqnet::membership::Membership;
use seqnet::sim::{FaultPlan, SimTime};

/// An arbitrary valid membership within `bounds`, shrunk over its seed.
pub fn membership_with(bounds: MembershipBounds) -> impl Strategy<Value = Membership> {
    any::<u64>().prop_map(move |seed| testing::random_membership_with(seed, bounds))
}

/// An arbitrary valid membership under the default bounds (4–10 nodes,
/// 2–5 groups, 2–6 member samples per group).
pub fn membership() -> impl Strategy<Value = Membership> {
    any::<u64>().prop_map(testing::random_membership)
}

/// A membership guaranteed to contain at least one double overlap (nodes
/// 0 and 1 subscribe to groups 0 and 1) — the configurations where
/// ordering is actually at stake.
pub fn overlapped_membership() -> impl Strategy<Value = Membership> {
    any::<u64>().prop_map(testing::random_overlapped_membership)
}

/// A randomized-but-reproducible fault plan targeting `nodes` sequencing
/// nodes over `horizon`.
pub fn fault_plan(nodes: usize, horizon: SimTime) -> impl Strategy<Value = FaultPlan> {
    any::<u64>().prop_map(move |seed| testing::random_fault_plan(seed, nodes, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqnet::membership::GroupId;
    use seqnet::overlap::GraphBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every generated membership builds a graph satisfying C1/C2.
        #[test]
        fn generated_memberships_build_valid_graphs(m in membership()) {
            let graph = GraphBuilder::new().build(&m);
            prop_assert!(graph.validate_against(&m).is_ok());
        }

        /// The overlapped strategy always yields its promised overlap.
        #[test]
        fn overlapped_memberships_keep_the_overlap(m in overlapped_membership()) {
            prop_assert!(m.double_overlapped(GroupId(0), GroupId(1)));
        }

        /// Custom bounds are respected.
        #[test]
        fn bounds_are_respected(
            m in membership_with(MembershipBounds {
                nodes: (3, 5),
                groups: (2, 3),
                members: (2, 3),
            })
        ) {
            prop_assert!(m.num_nodes() <= 5);
            prop_assert!(m.num_groups() >= 2 && m.num_groups() <= 3);
        }

        /// Fault-plan adaptation stays deterministic per seed (the adapter
        /// must not smuggle in extra entropy).
        #[test]
        fn fault_plans_reproduce(seed in any::<u64>()) {
            let horizon = SimTime::from_ms(40.0);
            let a = testing::random_fault_plan(seed, 3, horizon);
            let b = testing::random_fault_plan(seed, 3, horizon);
            prop_assert_eq!(a, b);
        }
    }
}
