//! Quiescent membership churn: groups join and leave between bursts of
//! traffic, the sequencing graph updates incrementally (lazy retirement),
//! and ordering guarantees keep holding on the updated graph.
//!
//! The paper holds membership fixed during its experiments and defers
//! dynamic behavior to future work (§5); we verify correctness (not
//! performance) of the incremental path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqnet::core::{DelayModel, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::runtime::{Cluster, ClusterConfig};
use seqnet::sim::SimTime;
use std::time::Duration;

#[test]
fn traffic_between_membership_epochs_stays_ordered() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut dyng = GraphBuilder::new().dynamic();
    let mut live_groups: Vec<GroupId> = Vec::new();
    let mut next_group = 0u32;

    for epoch in 0..12 {
        // Mutate membership: mostly adds early, mixed later.
        if live_groups.is_empty() || rng.gen_bool(0.65) {
            let gid = GroupId(next_group);
            next_group += 1;
            let size = rng.gen_range(2..6);
            let members: std::collections::BTreeSet<NodeId> =
                (0..size).map(|_| NodeId(rng.gen_range(0..10))).collect();
            dyng.add_group(gid, members);
            live_groups.push(gid);
        } else {
            let idx = rng.gen_range(0..live_groups.len());
            dyng.remove_group(live_groups.swap_remove(idx));
        }

        let graph = dyng.graph();
        graph
            .validate_against(dyng.membership())
            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));

        // Run a burst of traffic on the updated graph.
        let m = dyng.membership().clone();
        if m.is_empty() {
            continue;
        }
        let mut bus = OrderedPubSub::with_graph_unchecked(
            &m,
            graph,
            DelayModel::Uniform(SimTime::from_ms(1.0)),
        )
        .expect("graph is valid");
        let mut expected = 0usize;
        for &g in &live_groups {
            for sender in m.members(g).collect::<Vec<_>>() {
                bus.publish(sender, g, vec![epoch as u8]).unwrap();
                expected += m.group_size(g);
            }
        }
        bus.run_to_quiescence();
        assert_eq!(bus.stuck_messages(), 0, "epoch {epoch} deadlocked");
        assert_eq!(bus.all_deliveries().count(), expected, "epoch {epoch}");

        let nodes: Vec<NodeId> = m.nodes().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let da: Vec<_> = bus.delivered(a).iter().map(|d| d.id).collect();
                let db: Vec<_> = bus.delivered(b).iter().map(|d| d.id).collect();
                let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
                let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
                assert_eq!(ca, cb, "epoch {epoch}: {a} vs {b}");
            }
        }
    }
}

/// The threaded deployment under churn *and* loss: each membership epoch
/// redeploys the updated groups onto a fresh cluster whose links drop
/// frames, so the reliable-link layer has to earn the FIFO-channel
/// assumption every epoch.
#[test]
fn churned_memberships_converge_over_lossy_links() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut dyng = GraphBuilder::new().dynamic();
    let mut live_groups: Vec<GroupId> = Vec::new();
    let mut next_group = 0u32;
    let mut total_dropped = 0u64;

    for epoch in 0..4 {
        if live_groups.len() < 2 || rng.gen_bool(0.6) {
            let gid = GroupId(next_group);
            next_group += 1;
            let size = rng.gen_range(2..5);
            let members: std::collections::BTreeSet<NodeId> =
                (0..size).map(|_| NodeId(rng.gen_range(0..8))).collect();
            dyng.add_group(gid, members);
            live_groups.push(gid);
        } else {
            let idx = rng.gen_range(0..live_groups.len());
            dyng.remove_group(live_groups.swap_remove(idx));
        }

        let m: Membership = dyng.membership().clone();
        if m.is_empty() {
            continue;
        }
        let config = ClusterConfig {
            drop_probability: 0.25,
            retransmit_timeout: Duration::from_millis(3),
            seed: 1000 + epoch as u64,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::start(&m, config);
        let mut expected = 0usize;
        for &grp in &live_groups {
            for sender in m.members(grp).collect::<Vec<_>>() {
                cluster.publish(sender, grp, vec![epoch as u8]).unwrap();
                expected += m.group_size(grp);
            }
        }
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));

        let nodes: Vec<NodeId> = m.nodes().collect();
        let empty = Vec::new();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let da: Vec<_> =
                    deliveries.get(&a).unwrap_or(&empty).iter().map(|x| x.id).collect();
                let db: Vec<_> =
                    deliveries.get(&b).unwrap_or(&empty).iter().map(|x| x.id).collect();
                let ca: Vec<_> = da.iter().filter(|x| db.contains(x)).collect();
                let cb: Vec<_> = db.iter().filter(|x| da.contains(x)).collect();
                assert_eq!(ca, cb, "epoch {epoch}: {a} vs {b} disagree");
            }
        }
        cluster.shutdown();
        total_dropped += cluster.stats().frames_dropped;
    }
    assert!(total_dropped > 0, "the loss injector fired across the epochs");
}

#[test]
fn retired_atoms_accumulate_then_compact() {
    let mut dyng = GraphBuilder::new().dynamic();
    // Build a clique of overlapping groups and then remove half.
    let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
    for gi in 0..6u32 {
        dyng.add_group(GroupId(gi), nodes.clone());
    }
    assert_eq!(dyng.graph().num_overlap_atoms(), 15, "C(6,2) overlaps");
    for gi in 0..3u32 {
        dyng.remove_group(GroupId(gi));
    }
    let lazy = dyng.graph();
    lazy.validate_against(dyng.membership()).expect("valid");
    assert_eq!(lazy.num_overlap_atoms(), 3, "C(3,2) live overlaps remain");
    assert!(dyng.num_retired() > 0, "lazy removal leaves retired atoms");

    dyng.compact();
    let compacted = dyng.graph();
    compacted
        .validate_against(dyng.membership())
        .expect("valid after compaction");
    assert_eq!(compacted.num_overlap_atoms(), 3);
    assert_eq!(dyng.num_retired(), 0);
    assert!(
        compacted.num_atoms() < lazy.num_atoms(),
        "compaction sheds retired atoms"
    );
}

#[test]
fn membership_change_is_remove_plus_add() {
    // "changing the graph when group membership changes can be
    // accomplished by adding a group with the new membership and removing
    // the old one" (§3.2).
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(GroupId(0), [NodeId(0), NodeId(1), NodeId(2)]);
    dyng.add_group(GroupId(1), [NodeId(1), NodeId(2), NodeId(3)]);
    assert_eq!(dyng.graph().num_overlap_atoms(), 1);

    // Node 3 leaves G1, node 0 joins: overlap with G0 changes to {0,1,2}.
    dyng.remove_group(GroupId(1));
    dyng.add_group(GroupId(1), [NodeId(0), NodeId(1), NodeId(2)]);
    let graph = dyng.graph();
    graph.validate_against(dyng.membership()).expect("valid");
    assert_eq!(graph.num_overlap_atoms(), 1);
    let overlap = graph
        .atoms()
        .iter()
        .filter(|a| !graph.is_retired(a.id))
        .find_map(|a| a.overlap())
        .expect("one live overlap");
    assert_eq!(overlap.members.len(), 3, "updated overlap has three members");
}
