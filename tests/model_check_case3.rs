//! Exhaustive mini model-check of the Theorem 1 Case III scenario: three
//! groups, pairwise double-overlapped — the configuration whose
//! transitivity argument is the heart of the paper's proof (and whose
//! mishandling produces the Figure 2 circular dependency).
//!
//! We enumerate *every* combination of fast/slow delays over all protocol
//! channels and *every* publish order of one message per group, and check
//! liveness (no deadlock) plus pairwise agreement at all nodes. Unlike the
//! randomized property tests, this is exhaustive over its (small) space.
//!
//! This sweep is the ancestor of the general model checker: `seqnet-check`
//! explores the same configuration (as the `case3-pairwise` scenario in
//! `crates/check/src/scenario.rs`) schedule by schedule, over crash faults
//! and four other oracles — see `tests/model_check_matrix.rs` and
//! PROTOCOL.md §10. The delay-lattice version here is kept as an
//! independent cross-check through the full simulator stack.

use seqnet::core::{DelayModel, Endpoint, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::sim::SimTime;
use std::collections::HashMap;

const A: NodeId = NodeId(0);
const B: NodeId = NodeId(1);
const C: NodeId = NodeId(2);
const D: NodeId = NodeId(3);

fn fig2_membership() -> Membership {
    Membership::from_groups([
        (GroupId(0), vec![A, B, D]),
        (GroupId(1), vec![A, B, C]),
        (GroupId(2), vec![B, C, D]),
    ])
}

/// All protocol channels of the built graph: host→ingress, atom→atom on
/// each path, atom→host at egress.
fn channels(m: &Membership, graph: &seqnet::overlap::SequencingGraph) -> Vec<(Endpoint, Endpoint)> {
    let mut out = Vec::new();
    for (group, path) in graph.paths() {
        for node in m.members(group) {
            out.push((Endpoint::Host(node), Endpoint::Atom(path[0])));
            out.push((Endpoint::Atom(*path.last().unwrap()), Endpoint::Host(node)));
        }
        for w in path.windows(2) {
            out.push((Endpoint::Atom(w[0]), Endpoint::Atom(w[1])));
        }
    }
    out.sort_by_key(|(a, b)| (format!("{a:?}"), format!("{b:?}")));
    out.dedup();
    out
}

#[test]
fn exhaustive_delays_and_publish_orders() {
    let m = fig2_membership();
    let graph = GraphBuilder::new().build(&m);
    graph.validate_against(&m).expect("valid");
    let chans = channels(&m, &graph);
    // Keep the space tractable: assign fast/slow to the inter-atom and
    // egress channels (the ones that steer interleavings); ingress
    // channels keep the default.
    let steering: Vec<(Endpoint, Endpoint)> = chans
        .iter()
        .copied()
        .filter(|(a, _)| matches!(a, Endpoint::Atom(_)))
        .collect();
    assert!(
        steering.len() <= 14,
        "steering set {} too large for exhaustion",
        steering.len()
    );

    let senders = [(A, GroupId(0)), (A, GroupId(1)), (D, GroupId(2))];
    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];

    let mut cases = 0u64;
    for mask in 0u32..(1 << steering.len()) {
        let mut overrides = HashMap::new();
        for (i, &ch) in steering.iter().enumerate() {
            let delay = if mask & (1 << i) != 0 {
                SimTime::from_ms(9.0) // slow
            } else {
                SimTime::from_ms(1.0) // fast
            };
            overrides.insert(ch, delay);
        }
        for order in &orders {
            let delays = DelayModel::PerChannel {
                default: SimTime::from_ms(1.0),
                overrides: overrides.clone(),
            };
            let mut bus =
                OrderedPubSub::with_graph_unchecked(&m, graph.clone(), delays).expect("valid");
            for (slot, &idx) in order.iter().enumerate() {
                let (sender, group) = senders[idx];
                bus.publish_at(
                    SimTime::from_micros(slot as u64 * 100),
                    sender,
                    group,
                    vec![],
                )
                .unwrap();
            }
            bus.run_to_quiescence();
            cases += 1;

            assert_eq!(
                bus.stuck_messages(),
                0,
                "deadlock at mask {mask:b}, order {order:?}"
            );
            let nodes = [A, B, C, D];
            for (i, &x) in nodes.iter().enumerate() {
                for &y in &nodes[i + 1..] {
                    let dx: Vec<_> = bus.delivered(x).iter().map(|d| d.id).collect();
                    let dy: Vec<_> = bus.delivered(y).iter().map(|d| d.id).collect();
                    let cx: Vec<_> = dx.iter().filter(|v| dy.contains(v)).collect();
                    let cy: Vec<_> = dy.iter().filter(|v| dx.contains(v)).collect();
                    assert_eq!(
                        cx, cy,
                        "disagreement at mask {mask:b}, order {order:?}: {x} vs {y}"
                    );
                }
            }
        }
    }
    // Document the covered volume so a refactor that silently shrinks the
    // steering set fails loudly.
    assert!(cases >= 6 * 256, "only {cases} cases explored");
}
