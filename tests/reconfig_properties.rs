//! Property-based tests of online reconfiguration (PROTOCOL.md §14):
//! arbitrary join/leave/publish/crash interleavings preserve exactly-once
//! delivery and per-group total order across the epoch boundary, and
//! epoch-stamped durable state roundtrips losslessly.

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet::core::proto::{Digest, Frame, ProtocolState};
use seqnet::core::{Message, MessageId, OrderedPubSub};
use seqnet::deploy::snapshot::DiskSnapshot;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

mod strategies;

/// The next configuration for a churn step: a fresh node joins group 0,
/// or one of group 0's guaranteed members leaves. `overlapped_membership`
/// pins nodes 0 and 1 inside groups 0 and 1, so a leave never empties the
/// group and the double overlap survives either way.
fn next_membership(m: &Membership, join: bool) -> Membership {
    let mut next = m.clone();
    if join {
        next.subscribe(NodeId(m.num_nodes() as u32 + 7), GroupId(0));
    } else {
        next.unsubscribe(NodeId(0), GroupId(0));
    }
    next
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: for any overlapped membership, any publish
    /// schedule, any split of that schedule around a live join or leave,
    /// and any crash plan against atom 0, the run drains with exactly-once
    /// delivery per epoch-appropriate audience, agreeing per-group orders
    /// at every pair of subscribers, and monotone epoch stamps.
    #[test]
    fn churn_interleavings_preserve_delivery_and_order(
        m in strategies::overlapped_membership(),
        schedule in vec((0usize..64, 0usize..64, 0u64..10_000), 1..16),
        split in 0usize..16,
        join in any::<bool>(),
        plan in strategies::fault_plan(1, SimTime::from_ms(40.0)),
    ) {
        let next = next_membership(&m, join);
        let groups: Vec<GroupId> = m.groups().collect();
        let nodes: Vec<NodeId> = m.nodes().collect();
        let split = split.min(schedule.len());

        let mut bus = OrderedPubSub::new(&m);
        bus.apply_fault_plan(plan);

        // Publishes before the split are accepted under epoch 0 (still in
        // flight when the reconfiguration is staged); the rest park.
        let mut audience: Vec<(GroupId, usize)> = Vec::new();
        for (k, &(s, g, t)) in schedule.iter().enumerate() {
            if k == split {
                prop_assert_eq!(
                    bus.begin_reconfigure(&next, GraphBuilder::new().build(&next)).unwrap(),
                    1
                );
            }
            let sender = nodes[s % nodes.len()];
            let group = groups[g % groups.len()];
            // Times land inside the fault plan's horizon, so crash
            // windows genuinely interleave with the traffic and the
            // handoff drain.
            bus.publish_at(SimTime::from_micros(t + k as u64), sender, group, vec![])
                .unwrap();
            let epoch_m = if k < split { &m } else { &next };
            audience.push((group, epoch_m.group_size(group)));
        }
        if split >= schedule.len() {
            prop_assert_eq!(
                bus.begin_reconfigure(&next, GraphBuilder::new().build(&next)).unwrap(),
                1
            );
        }
        prop_assert_eq!(bus.parked_publishes(), schedule.len() - split);

        bus.run_to_quiescence();
        prop_assert_eq!(bus.stuck_messages(), 0, "deadlock under churn");
        prop_assert!(!bus.reconfig_pending(), "handoff completed");
        prop_assert_eq!(bus.epoch(), 1);

        // Exactly-once per epoch audience: each publish reaches every
        // member its epoch's membership prescribes, and nobody else.
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for d in bus.all_deliveries() {
            *counts.entry(d.id.0).or_insert(0) += 1;
            let want = if (d.id.0 as usize) < split { 0 } else { 1 };
            prop_assert_eq!(d.epoch, want, "epoch stamp matches the publish's epoch");
        }
        for (k, &(_, size)) in audience.iter().enumerate() {
            prop_assert_eq!(
                counts.get(&(k as u64)).copied().unwrap_or(0),
                size,
                "message {} audience", k
            );
        }

        // Per-receiver: no duplicates, monotone epoch stamps, and
        // pairwise agreement on the relative order of common messages.
        let all_nodes: Vec<NodeId> = next
            .nodes()
            .chain(m.nodes())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut logs: Vec<Vec<u64>> = Vec::with_capacity(all_nodes.len());
        for &node in &all_nodes {
            let recs = bus.delivered(node);
            let mut seen = BTreeSet::new();
            for d in recs {
                prop_assert!(seen.insert(d.id.0), "{} delivered {} twice", node, d.id);
            }
            for pair in recs.windows(2) {
                prop_assert!(
                    pair[0].epoch <= pair[1].epoch,
                    "{} saw epochs run backwards", node
                );
            }
            logs.push(recs.iter().map(|d| d.id.0).collect());
        }
        for (i, a) in logs.iter().enumerate() {
            for b in logs.iter().skip(i + 1) {
                let common: BTreeSet<u64> = a
                    .iter()
                    .copied()
                    .collect::<BTreeSet<_>>()
                    .intersection(&b.iter().copied().collect())
                    .copied()
                    .collect();
                let proj = |log: &Vec<u64>| -> Vec<u64> {
                    log.iter().copied().filter(|id| common.contains(id)).collect()
                };
                prop_assert_eq!(proj(a), proj(b), "pairwise order disagreement");
            }
        }
    }

    /// Epoch-stamped disk snapshots roundtrip bit-exactly through the
    /// SQSNAP2 codec, whatever the epoch and counter contents.
    #[test]
    fn epoch_stamped_disk_snapshot_roundtrips(
        epoch in any::<u64>(),
        overlaps in vec(any::<u64>(), 0..8),
        groups in vec((0u32..16, any::<u64>()), 0..6),
        rx in vec((0u32..16, any::<u64>()), 0..6),
        frames in vec(0u64..1_000, 0..4),
    ) {
        let tx_frames: Vec<(u64, Frame)> = frames
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                (i as u64, Frame {
                    msg: Message::new(MessageId(id), NodeId(1), GroupId(0), b"p".to_vec()),
                    target_atom: None,
                })
            })
            .collect();
        let snap = DiskSnapshot {
            epoch,
            overlaps,
            groups,
            rx_next: rx,
            tx: vec![(3, 17, tx_frames)],
        };
        let back = DiskSnapshot::decode(&snap.encode()).expect("decodes");
        prop_assert_eq!(back, snap);
    }

    /// Counter export/import plus the epoch restore used by crash
    /// recovery reproduces the exact sequencing state: same digest, same
    /// next numbers, same epoch — for any membership and traffic prefix.
    #[test]
    fn protocol_state_epoch_survives_counter_roundtrip(
        m in strategies::membership(),
        traffic in vec((0usize..64, 0u64..64), 0..12),
        adoptions in 0u64..4,
    ) {
        let graph = GraphBuilder::new().build(&m);
        let groups: Vec<GroupId> = m.groups().collect();
        let mut state = ProtocolState::new(&graph);
        for _ in 0..adoptions {
            state.adopt(&graph);
        }
        for (i, &(g, id)) in traffic.iter().enumerate() {
            let mut msg = Message::new(
                MessageId(id * 64 + i as u64),
                NodeId(0),
                groups[g % groups.len()],
                vec![],
            );
            state.sequence_fully(&graph, &mut msg);
            prop_assert_eq!(msg.epoch, adoptions, "ingress stamps the current epoch");
        }
        prop_assert_eq!(state.epoch(), adoptions);

        let (overlaps, group_counters) = state.export_counters();
        let mut restored = ProtocolState::import_counters(&graph, &overlaps, &group_counters);
        restored.set_epoch(state.epoch());

        let digest_of = |s: &ProtocolState| {
            let mut d = Digest::new();
            s.digest_into(&mut d);
            d.finish()
        };
        prop_assert_eq!(digest_of(&restored), digest_of(&state));
    }
}
