//! Allocation-budget regression test (ISSUE 10 satellite): the threaded
//! runtime's hot path — stamping, coalescing, link send/receive against
//! per-link scratch buffers — must stay on its allocation diet. A
//! counting global allocator measures allocator hits per delivered
//! message for the simulator and the threaded runtime over the same
//! workload; the runtime budget is the simulator's figure plus a small
//! tolerance, so a regression that reintroduces per-frame `Vec` churn on
//! the wire path fails here before it shows up in BENCH_10.
//!
//! The comparison is deliberately coarse (1.5× + 1 slack): thread startup
//! and channel machinery differ legitimately between the drivers. What it
//! must catch is the order-of-magnitude kind of regression — the seed of
//! this PR measured ~19 runtime allocations per message against ~4 for
//! the sim before the diet, and ~1.3 against ~3.0 after.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};
use seqnet::sim::SimTime;

/// Pass-through allocator counting allocation calls across all threads.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; the counter is the only
// addition and is atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The shared membership: three groups in a chain, adjacent groups
/// overlapping in two members (double overlaps force cross-group
/// sequencing, the protocol's interesting path).
fn membership() -> Membership {
    let mut m = Membership::new();
    for grp in 0u32..3 {
        for node in grp..=grp + 2 {
            m.subscribe(NodeId(node), GroupId(grp));
        }
    }
    m
}

/// The shared publish schedule and its expected delivery count.
fn schedule(m: &Membership, rounds: usize) -> (Vec<(NodeId, GroupId)>, usize) {
    let mut publishes = Vec::new();
    let mut expected = 0;
    for _ in 0..rounds {
        for group in m.groups() {
            let sender = m.members(group).next().expect("non-empty group");
            publishes.push((sender, group));
            expected += m.group_size(group);
        }
    }
    (publishes, expected)
}

/// Allocator hits per delivered message through the simulator.
fn sim_allocs_per_msg(m: &Membership, rounds: usize) -> f64 {
    let (publishes, expected) = schedule(m, rounds);
    let mut bus = OrderedPubSub::new(m);
    let before = allocations();
    for (k, &(node, group)) in publishes.iter().enumerate() {
        bus.publish_at(SimTime::from_micros((k as u64 + 1) * 500), node, group, vec![])
            .expect("sim publish");
    }
    bus.run_to_quiescence();
    let spent = allocations() - before;
    assert_eq!(bus.stuck_messages(), 0);
    assert_eq!(bus.all_deliveries().count(), expected);
    spent as f64 / expected as f64
}

/// Allocator hits per delivered message through the threaded runtime with
/// the coalescing scratch-buffer wire path on. The measured window spans
/// publish → full delivery; cluster startup and shutdown (thread spawns,
/// channel setup) are kept outside it, mirroring how `seqnet-bench load`
/// measures.
fn runtime_allocs_per_msg(m: &Membership, rounds: usize) -> f64 {
    let (publishes, expected) = schedule(m, rounds);
    let mut cluster = Cluster::start(
        m,
        ClusterConfig {
            coalesce: true,
            seed: 7,
            ..ClusterConfig::default()
        },
    );
    // Let startup transients (first snapshots, heartbeat wiring) settle
    // before the counted window opens.
    std::thread::sleep(Duration::from_millis(50));
    let before = allocations();
    let mut received = 0usize;
    let mut next = 0usize;
    while received < expected {
        // Pace publishes: one per poll keeps the load shape close to the
        // open-loop bench rather than one giant burst.
        if next < publishes.len() {
            let (node, group) = publishes[next];
            cluster.publish(node, group, vec![]).expect("runtime publish");
            next += 1;
        }
        if cluster.next_delivery(Duration::from_millis(2)).is_some() {
            received += 1;
        }
    }
    let spent = allocations() - before;
    cluster.shutdown();
    spent as f64 / expected as f64
}

#[test]
fn runtime_stays_on_its_allocation_diet() {
    let m = membership();
    // Warm both drivers once so lazy one-time setup (thread-local inits,
    // runtime tables) isn't charged to either measured window.
    let _ = sim_allocs_per_msg(&m, 2);
    let _ = runtime_allocs_per_msg(&m, 2);

    let rounds = 60;
    let sim = sim_allocs_per_msg(&m, rounds);
    let runtime = runtime_allocs_per_msg(&m, rounds);
    let budget = sim * 1.5 + 1.0;
    eprintln!("allocs/msg: sim {sim:.3}, runtime {runtime:.3}, budget {budget:.3}");
    assert!(
        runtime <= budget,
        "runtime hot path is off its allocation diet: {runtime:.3} allocs/msg \
         vs sim {sim:.3} (budget {budget:.3}) — did a per-frame Vec sneak back \
         into the wire path?"
    );
}
