//! Hop-by-hop message traces: the engine records the exact sequencing
//! journey of every message — publisher, atoms in path order, arrivals.

use seqnet::core::{Endpoint, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

fn overlapped() -> Membership {
    Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
        (g(2), vec![n(0), n(2), n(3)]),
    ])
}

#[test]
fn trace_follows_the_group_path() {
    let m = overlapped();
    let mut bus = OrderedPubSub::new(&m);
    let id = bus.publish(n(0), g(0), vec![]).unwrap();
    bus.run_to_quiescence();

    let trace = bus.trace(id).expect("published messages are traced");
    // First hop: the publisher.
    assert_eq!(trace[0].0, Endpoint::Host(n(0)));
    // Middle: exactly the group's sequencing path, in order.
    let path = bus.graph().path(g(0)).unwrap().to_vec();
    let atoms_in_trace: Vec<_> = trace
        .iter()
        .filter_map(|(ep, _)| match ep {
            Endpoint::Atom(a) => Some(*a),
            Endpoint::Host(_) => None,
        })
        .collect();
    assert_eq!(atoms_in_trace, path);
    // Tail: one arrival per member.
    let arrivals: Vec<_> = trace[1 + path.len()..]
        .iter()
        .map(|(ep, _)| match ep {
            Endpoint::Host(h) => *h,
            Endpoint::Atom(a) => panic!("atom {a} after distribution"),
        })
        .collect();
    let mut expected: Vec<_> = m.members(g(0)).collect();
    let mut got = arrivals.clone();
    got.sort();
    expected.sort();
    assert_eq!(got, expected);
}

#[test]
fn trace_times_are_monotone() {
    let m = overlapped();
    let mut bus = OrderedPubSub::new(&m);
    let ids: Vec<_> = (0..5)
        .map(|i| {
            let grp = g(i % 3);
            let sender = m.members(grp).next().unwrap();
            bus.publish(sender, grp, vec![]).unwrap()
        })
        .collect();
    bus.run_to_quiescence();
    for id in ids {
        let trace = bus.trace(id).unwrap();
        assert!(trace.len() >= 2);
        // Times never decrease along the sequencing path; distribution
        // arrivals may interleave but each is after the egress atom hop.
        let egress_idx = trace
            .iter()
            .rposition(|(ep, _)| matches!(ep, Endpoint::Atom(_)))
            .expect("at least one atom");
        for w in trace[..=egress_idx].windows(2) {
            assert!(w[0].1 <= w[1].1, "{id}: time went backwards on path");
        }
        let egress_time = trace[egress_idx].1;
        for (ep, t) in &trace[egress_idx + 1..] {
            assert!(matches!(ep, Endpoint::Host(_)));
            assert!(*t >= egress_time);
        }
    }
}

#[test]
fn unpublished_ids_have_no_trace() {
    let m = overlapped();
    let bus = OrderedPubSub::new(&m);
    assert!(bus.trace(seqnet::core::MessageId(42)).is_none());
}
