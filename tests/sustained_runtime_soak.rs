//! Sustained-load soak of the threaded runtime: ~30 seconds of open-loop
//! publishing over a coalescing cluster with one sequencing-node
//! crash/restart mid-run. Ignored by default — CI's nightly-style `soak`
//! job (and anyone debugging the runtime) runs it explicitly with
//! `cargo test --test sustained_runtime_soak -- --ignored`.
//!
//! What it proves, at a duration the per-commit tests never reach:
//!
//! * **No loss**: every publish reaches every subscribed host, across the
//!   crash window (replay from upstream retransmission buffers).
//! * **No duplication**: no host sees the same message twice, even though
//!   the wire retransmits and the crash forces replays.
//! * **Order agreement**: any two hosts agree on the relative order of
//!   their common messages (Definition 1), for the whole run.
//! * **Bounded buffering**: the [`Cluster::prometheus_text`] counters show
//!   wire amplification (frames sent per required delivery hop) staying
//!   under a small constant — sustained load with a crash must not turn
//!   into a retransmission storm or an unbounded backlog.
//!
//! `SEQNET_SOAK_SECS` overrides the soak duration (e.g. `=5` for a quick
//! local sanity pass); the default is the nightly 30.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

/// Three groups, two disjoint double overlaps ({0,1} and {10,11}), so the
/// deployment deterministically has two sequencing nodes and killing one
/// leaves the other serving its own groups — the crash is a degradation,
/// not an outage.
fn soak_membership() -> Membership {
    Membership::from_groups([
        (g(0), vec![n(0), n(1), n(10), n(11)]),
        (g(1), vec![n(0), n(1), n(2)]),
        (g(2), vec![n(10), n(11), n(12)]),
    ])
}

/// Extracts `name` from a Prometheus text exposition.
fn counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("counter {name} missing from exposition:\n{text}"))
}

#[test]
#[ignore = "~30s soak; run explicitly or via the nightly soak CI job"]
fn sustained_load_with_crash_survives_without_loss_or_duplication() {
    let soak_secs: u64 = std::env::var("SEQNET_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let m = soak_membership();
    let mut cluster = Cluster::start(
        &m,
        ClusterConfig {
            coalesce: true,
            seed: 0x50AC_2026,
            ..ClusterConfig::default()
        },
    );
    assert_eq!(cluster.num_sequencing_nodes(), 2);

    let groups = [g(0), g(1), g(2)];
    let rate_hz = 150.0;
    let period = Duration::from_secs_f64(1.0 / rate_hz);
    let start = Instant::now();
    let end = start + Duration::from_secs(soak_secs);
    let crash_at = start + Duration::from_secs(soak_secs / 3);
    let restart_at = start + Duration::from_secs(2 * soak_secs / 3);

    let mut deliveries: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    let mut published = 0u64;
    let mut expected = 0usize;
    let mut received = 0usize;
    let mut next_pub = start;
    let mut crashed = false;
    let mut restarted = false;
    while Instant::now() < end {
        let now = Instant::now();
        if !crashed && now >= crash_at {
            assert!(cluster.crash_node(0), "victim node was running");
            crashed = true;
        }
        if !restarted && now >= restart_at {
            assert!(cluster.restart_node(0), "victim node was down");
            restarted = true;
        }
        if now >= next_pub {
            let group = groups[(published % 3) as usize];
            let sender = m.members(group).next().unwrap();
            cluster
                .publish(sender, group, published.to_le_bytes().to_vec())
                .unwrap();
            expected += m.group_size(group);
            published += 1;
            next_pub += period;
            continue;
        }
        if let Some((host, msg)) = cluster.next_delivery(next_pub - now) {
            deliveries.entry(host).or_default().push(msg.id.0);
            received += 1;
        }
    }
    assert!(crashed && restarted, "soak too short for the fault window");
    assert!(published > 0);

    // Tail drain: the restarted node still owes replayed deliveries.
    let deadline = Instant::now() + Duration::from_secs(60);
    while received < expected && Instant::now() < deadline {
        if let Some((host, msg)) = cluster.next_delivery(Duration::from_millis(50)) {
            deliveries.entry(host).or_default().push(msg.id.0);
            received += 1;
        }
    }
    cluster.shutdown();

    // No loss.
    assert_eq!(
        received, expected,
        "lost deliveries: {published} published, {received}/{expected} received"
    );
    // No duplication: each host saw each id at most once.
    for (host, ids) in &deliveries {
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), before, "host {host:?} saw duplicate deliveries");
    }
    // Order agreement on common messages, every pair of hosts.
    let hosts: Vec<NodeId> = deliveries.keys().copied().collect();
    for (i, &a) in hosts.iter().enumerate() {
        for &b in &hosts[i + 1..] {
            let da = &deliveries[&a];
            let db = &deliveries[&b];
            let ca: Vec<u64> = da.iter().copied().filter(|x| db.contains(x)).collect();
            let cb: Vec<u64> = db.iter().copied().filter(|x| da.contains(x)).collect();
            assert_eq!(ca, cb, "hosts {a:?} and {b:?} disagree on common order");
        }
    }

    // Bounded buffering, read off the scrape endpoint: the whole run —
    // crash window included — must stay within a small constant wire
    // amplification of the minimum frame count (each delivery takes at
    // least one wire hop; coalescing and paths add, retransmission storms
    // would explode it).
    let text = cluster.prometheus_text();
    assert_eq!(counter(&text, "seqnet_crashes_total"), 1);
    assert!(
        counter(&text, "seqnet_frames_replayed_total") > 0,
        "the crash window must force replay on restart"
    );
    let frames_sent = counter(&text, "seqnet_frames_sent_total");
    assert!(
        frames_sent >= expected as u64,
        "every delivery needs at least one wire frame"
    );
    assert!(
        frames_sent <= 20 * expected as u64,
        "wire amplification out of bounds: {frames_sent} frames for {expected} deliveries"
    );
    // Duplicates are expected — a ~1/3-of-the-run crash window turns every
    // backoff retransmission into an inbox-queued duplicate — but each one
    // must be accounted for by a retransmission, and the dedup layer (the
    // per-host uniqueness assert above) must have absorbed all of them.
    let duplicates = counter(&text, "seqnet_duplicate_frames_total");
    let retransmissions = counter(&text, "seqnet_retransmissions_total");
    assert!(
        duplicates <= retransmissions,
        "{duplicates} duplicate frames but only {retransmissions} retransmissions"
    );
}
