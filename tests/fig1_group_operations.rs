//! The paper's Figure 1 storyline: adding and removing groups for a set
//! of four nodes A, B, C, D (§3.2).

use seqnet::membership::{GroupId, NodeId};
use seqnet::overlap::{AtomKind, GraphBuilder};

const A: NodeId = NodeId(0);
const B: NodeId = NodeId(1);
const C: NodeId = NodeId(2);
const D: NodeId = NodeId(3);
const G0: GroupId = GroupId(0);
const G1: GroupId = GroupId(1);
const G2: GroupId = GroupId(2);

#[test]
fn adding_the_first_group_creates_an_ingress_only_sequencer() {
    // "Adding the first group G0 is trivial: an ingress-only sequencer is
    // created — this sequencer orders all messages sent to the group."
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(G0, [A, B, C, D]);
    let graph = dyng.graph();
    graph.validate_against(dyng.membership()).expect("valid");
    assert_eq!(graph.num_overlap_atoms(), 0);
    assert_eq!(graph.num_atoms(), 1);
    assert!(matches!(
        graph.atoms()[0].kind,
        AtomKind::IngressOnly(g) if g == G0
    ));
    assert_eq!(graph.path(G0).unwrap().len(), 1);
}

#[test]
fn second_overlapping_group_replaces_the_ingress_only_sequencer() {
    // "When the second group G1 is added, if the memberships of G0 and G1
    // overlap with at least two nodes, a new sequencer Q0 must represent
    // G0 ∩ G1. All messages for both groups must transit this sequencer,
    // and the G0-specific sequencer may be replaced or removed."
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(G0, [A, B, C, D]);
    dyng.add_group(G1, [A, B]);
    let graph = dyng.graph();
    graph.validate_against(dyng.membership()).expect("valid");

    assert_eq!(graph.num_overlap_atoms(), 1);
    let overlap_atom = graph
        .atoms()
        .iter()
        .find(|a| a.overlap().is_some() && !graph.is_retired(a.id))
        .expect("Q0 exists");
    let overlap = overlap_atom.overlap().unwrap();
    assert_eq!(overlap.members, [A, B].into_iter().collect());

    // Both groups' paths transit Q0.
    assert!(graph.path(G0).unwrap().contains(&overlap_atom.id));
    assert!(graph.path(G1).unwrap().contains(&overlap_atom.id));

    // The G0-specific ingress-only sequencer was replaced (retired).
    let ingress_only_live = graph
        .atoms()
        .iter()
        .filter(|a| a.overlap().is_none() && !graph.is_retired(a.id))
        .count();
    assert_eq!(ingress_only_live, 0, "G0's dedicated sequencer retired");
}

#[test]
fn the_sequencer_is_relevant_only_to_the_overlap_members() {
    // "This sequencer is relevant for all nodes in G0 ∩ G1; the rest need
    // only use the group-local sequence number."
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(G0, [A, B, C, D]);
    dyng.add_group(G1, [A, B]);
    let graph = dyng.graph();
    assert_eq!(graph.relevant_atoms(A).len(), 1);
    assert_eq!(graph.relevant_atoms(B).len(), 1);
    assert!(graph.relevant_atoms(C).is_empty());
    assert!(graph.relevant_atoms(D).is_empty());
}

#[test]
fn non_overlapping_second_group_keeps_both_ingress_only() {
    // Without a double overlap, each group keeps its own ingress-only
    // sequencer and messages are "forwarded immediately for distribution".
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(G0, [A, B]);
    dyng.add_group(G1, [C, D]);
    let graph = dyng.graph();
    graph.validate_against(dyng.membership()).expect("valid");
    assert_eq!(graph.num_overlap_atoms(), 0);
    let live_ingress = graph
        .atoms()
        .iter()
        .filter(|a| a.overlap().is_none() && !graph.is_retired(a.id))
        .count();
    assert_eq!(live_ingress, 2);
}

#[test]
fn removing_a_group_retires_its_sequencer_lazily() {
    // "To remove a group, a termination message is sent... If the overlap
    // is gone, the sequencer may retire." We model retirement lazily; the
    // retired atom keeps forwarding as a transit hop.
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(G0, [A, B, C, D]);
    dyng.add_group(G1, [A, B]);
    dyng.add_group(G2, [C, D]);
    let before = dyng.graph();
    assert_eq!(before.num_overlap_atoms(), 2, "G0 overlaps G1 and G2");

    dyng.remove_group(G1);
    let after = dyng.graph();
    after.validate_against(dyng.membership()).expect("valid");
    assert_eq!(after.num_overlap_atoms(), 1, "(G0,G1) atom retired");
    assert!(after.path(G1).is_none(), "terminated sequence space");
    assert!(dyng.num_retired() >= 1);

    // G0 and G2 still share their sequencer and stay ordered.
    let shared = after
        .atoms()
        .iter()
        .find(|a| a.overlap().is_some() && !after.is_retired(a.id))
        .unwrap();
    assert!(after.path(G0).unwrap().contains(&shared.id));
    assert!(after.path(G2).unwrap().contains(&shared.id));
}

#[test]
fn removing_the_last_overlap_restores_ingress_only_operation() {
    let mut dyng = GraphBuilder::new().dynamic();
    dyng.add_group(G0, [A, B, C, D]);
    dyng.add_group(G1, [A, B]);
    dyng.remove_group(G1);
    let graph = dyng.graph();
    graph.validate_against(dyng.membership()).expect("valid");
    assert_eq!(graph.num_overlap_atoms(), 0);
    // G0 regains a (fresh) ingress-only sequencer.
    let path = graph.path(G0).expect("G0 still live");
    assert_eq!(path.len(), 1);
    assert!(graph.atoms()[path[0].index()].overlap().is_none());
}
