//! Differential sim↔runtime testing: one protocol core, two drivers.
//!
//! The simulator (`seqnet::core::OrderedPubSub`) and the threaded runtime
//! (`seqnet::runtime::Cluster`) both drive the sans-I/O protocol core in
//! `seqnet_core::proto`. These tests feed the *same* seeded workload — and,
//! in the faulty variant, the same [`FaultPlan`] — through both drivers and
//! assert they produce **identical per-receiver delivery orders within
//! every group**. Message ids are assigned sequentially from 0 by both
//! front-ends, so publishing in the same global order makes ids comparable
//! across the two systems.
//!
//! Scope of the equivalence: within a group, the delivery order at every
//! member is fixed by the group-local sequence numbers the ingress atom
//! assigns, and both drivers present publishes to that atom in the same
//! FIFO order — so the per-(group, receiver) id sequences must match
//! exactly, crash windows included. The *interleaving across groups* is
//! timing-dependent (wall clock vs virtual clock) and is deliberately not
//! compared.
//!
//! One caveat on fault plans: a [`FaultPlan`]'s crash-window indices name
//! *sequencing atoms* when applied to the simulator but *sequencing nodes*
//! (co-located atom groups) when replayed against a cluster. The plan here
//! crashes index 0, which exists in both interpretations; equivalence of
//! the delivered orders is required regardless of which party the index
//! lands on, because crash–recovery must be order-transparent.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::core::{Message, OrderedPubSub};
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};
use seqnet::sim::{FaultPlan, SimTime};
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-(group, receiver) delivered message ids, in delivery order.
type GroupOrders = BTreeMap<(GroupId, NodeId), Vec<u64>>;

fn sim_orders(bus: &OrderedPubSub, m: &Membership) -> GroupOrders {
    let mut orders = GroupOrders::new();
    for node in m.nodes() {
        for d in bus.delivered(node) {
            orders.entry((d.group, node)).or_default().push(d.id.0);
        }
    }
    orders
}

fn runtime_orders(deliveries: &BTreeMap<NodeId, Vec<Message>>) -> GroupOrders {
    let mut orders = GroupOrders::new();
    for (&node, msgs) in deliveries {
        for msg in msgs {
            orders.entry((msg.group, node)).or_default().push(msg.id.0);
        }
    }
    orders
}

/// The shared workload: every node publishes to every group it belongs
/// to, `rounds` times, in one fixed global order. Returns the publish
/// list and the expected total delivery count.
fn workload(m: &Membership, rounds: u32) -> (Vec<(NodeId, GroupId)>, usize) {
    let mut publishes = Vec::new();
    let mut expected = 0usize;
    for _ in 0..rounds {
        for node in m.nodes().collect::<Vec<_>>() {
            for group in m.groups_of(node).collect::<Vec<_>>() {
                publishes.push((node, group));
                expected += m.group_size(group);
            }
        }
    }
    (publishes, expected)
}

/// Runs the workload through both drivers (with an optional fault plan)
/// and asserts identical per-group delivery orders at every receiver.
fn assert_equivalent(seed: u64, plan: Option<FaultPlan>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ZipfGroups::new(10, 4).with_min_size(2).sample(&mut rng);
    let (publishes, expected) = workload(&m, 2);

    // Simulator: strictly increasing publish times keep the ingress
    // arrival order identical to the publish order.
    let mut bus = OrderedPubSub::new(&m);
    if let Some(plan) = plan.clone() {
        bus.apply_fault_plan(plan);
    }
    for (k, &(node, group)) in publishes.iter().enumerate() {
        bus.publish_at(SimTime::from_micros((k as u64 + 1) * 700), node, group, vec![])
            .unwrap();
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0, "sim delivered everything");
    let sim = sim_orders(&bus, &m);
    assert_eq!(sim.values().map(Vec::len).sum::<usize>(), expected);

    // Runtime: the single publisher front-end feeds ingress nodes over
    // FIFO links, preserving the same publish order per ingress.
    let config = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m, config);
    for &(node, group) in &publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    if let Some(plan) = &plan {
        cluster.run_fault_plan(plan);
    }
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    cluster.shutdown();
    let threaded = runtime_orders(&deliveries);

    assert_eq!(
        sim, threaded,
        "sim and runtime disagree on some per-group delivery order"
    );

    if plan.is_some() {
        assert!(
            bus.fault_stats().recovery.crashes > 0,
            "the fault plan actually crashed a simulated atom"
        );
        assert!(
            cluster.stats().recovery.crashes > 0,
            "the fault plan actually crashed a runtime node"
        );
    }
}

#[test]
fn fault_free_runs_agree() {
    assert_equivalent(11, None);
    assert_equivalent(47, None);
}

#[test]
fn crash_window_runs_agree() {
    // Index 0 names atom 0 in the simulator and sequencing node 0 in the
    // runtime (see module docs); both always exist. The window spans the
    // publish burst, so frames park (sim) / queue (runtime) and replay.
    let plan = FaultPlan::new().crash(
        0,
        SimTime::from_micros(5_000),
        SimTime::from_micros(40_000),
    );
    assert_equivalent(11, Some(plan));
}
