//! Differential sim↔runtime↔socket testing: one protocol core, three
//! drivers.
//!
//! The simulator (`seqnet::core::OrderedPubSub`), the threaded runtime
//! (`seqnet::runtime::Cluster`), and the socket deployment
//! (`seqnet::deploy::DeployCluster`, one real OS process per sequencing
//! node) all drive the sans-I/O protocol core in `seqnet_core::proto`.
//! These tests feed the *same* seeded workload — and, in the faulty
//! variants, the same [`FaultPlan`] — through all three drivers and assert
//! they produce **identical per-receiver delivery orders within every
//! group**. Message ids are assigned sequentially from 0 by every
//! front-end, so publishing in the same global order makes ids comparable
//! across the three systems. For the socket leg the fault plan is
//! converted by `ChaosPlan::from_fault_plan` into real SIGKILL + respawn
//! cycles against child processes.
//!
//! Scope of the equivalence: within a group, the delivery order at every
//! member is fixed by the group-local sequence numbers the ingress atom
//! assigns, and all drivers present publishes to that atom in the same
//! FIFO order — so the per-(group, receiver) id sequences must match
//! exactly, crash windows included. The *interleaving across groups* is
//! timing-dependent (wall clock vs virtual clock) and is deliberately not
//! compared.
//!
//! One caveat on fault plans: a [`FaultPlan`]'s crash-window indices name
//! *sequencing atoms* when applied to the simulator but *sequencing nodes*
//! (co-located atom groups) when replayed against a cluster — threaded or
//! socket. The plans here crash index 0, which exists in all
//! interpretations; equivalence of the delivered orders is required
//! regardless of which party the index lands on, because crash–recovery
//! must be order-transparent.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::core::{Message, OrderedPubSub};
use seqnet::deploy::{ChaosPlan, DeployCluster};
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::runtime::{Cluster, ClusterConfig, RuntimeError};
use seqnet::sim::{FaultPlan, SimTime};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// Per-(group, receiver) delivered message ids, in delivery order.
type GroupOrders = BTreeMap<(GroupId, NodeId), Vec<u64>>;

fn sim_orders(bus: &OrderedPubSub, m: &Membership) -> GroupOrders {
    let mut orders = GroupOrders::new();
    for node in m.nodes() {
        for d in bus.delivered(node) {
            orders.entry((d.group, node)).or_default().push(d.id.0);
        }
    }
    orders
}

fn delivery_orders(deliveries: &BTreeMap<NodeId, Vec<Message>>) -> GroupOrders {
    let mut orders = GroupOrders::new();
    for (&node, msgs) in deliveries {
        for msg in msgs {
            orders.entry((msg.group, node)).or_default().push(msg.id.0);
        }
    }
    orders
}

/// Asserts every per-(group, receiver) sequence delivers each id at most
/// once — the no-duplication half of exactly-once delivery.
fn assert_no_duplicates(orders: &GroupOrders, driver: &str) {
    for ((group, node), ids) in orders {
        let mut seen = std::collections::BTreeSet::new();
        for id in ids {
            assert!(
                seen.insert(id),
                "{driver}: message {id} delivered twice to {node} in {group}"
            );
        }
    }
}

/// The shared workload: every node publishes to every group it belongs
/// to, `rounds` times, in one fixed global order. Returns the publish
/// list and the expected total delivery count.
fn workload(m: &Membership, rounds: u32) -> (Vec<(NodeId, GroupId)>, usize) {
    let mut publishes = Vec::new();
    let mut expected = 0usize;
    for _ in 0..rounds {
        for node in m.nodes().collect::<Vec<_>>() {
            for group in m.groups_of(node).collect::<Vec<_>>() {
                publishes.push((node, group));
                expected += m.group_size(group);
            }
        }
    }
    (publishes, expected)
}

/// The binary hosting the `cluster-node` entry point for the socket leg:
/// the `seqnet` CLI built alongside these tests, or an explicit override.
fn seqnet_binary() -> PathBuf {
    option_env!("CARGO_BIN_EXE_seqnet")
        .map(PathBuf::from)
        .or_else(|| std::env::var("SEQNET_BIN").ok().map(PathBuf::from))
        .expect("no seqnet binary for node processes: set SEQNET_BIN")
}

/// Runs the workload through the socket deployment — real node processes,
/// real TCP — applying `plan`'s crash windows as real SIGKILL + respawn
/// cycles. Returns the per-group delivery orders.
fn socket_orders(
    seed: u64,
    m: &Membership,
    publishes: &[(NodeId, GroupId)],
    expected: usize,
    plan: Option<&FaultPlan>,
) -> GroupOrders {
    let config = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster = DeployCluster::start_with_binary(m, config, Some(seqnet_binary()))
        .expect("socket cluster starts");
    for &(node, group) in publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    if let Some(plan) = plan {
        cluster
            .run_chaos_plan(&ChaosPlan::from_fault_plan(plan))
            .expect("chaos plan replays");
    }
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .expect("socket cluster delivers everything");
    let stats = cluster.shutdown();

    // Observability: every node process wrote an incremental JSONL trace
    // that survives SIGKILL, and it parses.
    let mut obs_files = 0;
    for idx in 0..cluster.num_sequencing_nodes() {
        let path = cluster.dir().join(format!("node{idx}.obs.jsonl"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        obs_files += 1;
        assert!(
            seqnet::obs::jsonl::parse_jsonl_lines(&text).is_some(),
            "node {idx} obs log parses"
        );
    }
    assert!(obs_files > 0, "node processes wrote obs logs");
    assert!(stats.snapshots > 0, "node processes checkpointed to disk");

    if let Some(plan) = plan {
        let expected_kills = plan
            .crash_windows()
            .iter()
            .filter(|w| w.node < cluster.num_sequencing_nodes())
            .count() as u64;
        assert_eq!(
            stats.recovery.crashes, expected_kills,
            "every crash window SIGKILLed a real process"
        );
    }

    let orders = delivery_orders(&deliveries);
    assert_no_duplicates(&orders, "socket");
    assert_eq!(
        orders.values().map(Vec::len).sum::<usize>(),
        expected,
        "socket: zero loss"
    );
    orders
}

/// Runs the workload through all three drivers (with an optional fault
/// plan) and asserts identical per-group delivery orders at every
/// receiver.
fn assert_equivalent(seed: u64, plan: Option<FaultPlan>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ZipfGroups::new(10, 4).with_min_size(2).sample(&mut rng);
    let (publishes, expected) = workload(&m, 2);

    // Simulator: strictly increasing publish times keep the ingress
    // arrival order identical to the publish order.
    let mut bus = OrderedPubSub::new(&m);
    if let Some(plan) = plan.clone() {
        bus.apply_fault_plan(plan);
    }
    for (k, &(node, group)) in publishes.iter().enumerate() {
        bus.publish_at(SimTime::from_micros((k as u64 + 1) * 700), node, group, vec![])
            .unwrap();
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0, "sim delivered everything");
    let sim = sim_orders(&bus, &m);
    assert_eq!(sim.values().map(Vec::len).sum::<usize>(), expected);

    // Threaded runtime: the single publisher front-end feeds ingress
    // nodes over FIFO links, preserving the same publish order per
    // ingress.
    let config = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m, config);
    for &(node, group) in &publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    if let Some(plan) = &plan {
        cluster.run_fault_plan(plan);
    }
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    cluster.shutdown();
    let threaded = delivery_orders(&deliveries);

    // Socket deployment: real processes, real TCP, real SIGKILL.
    let socket = socket_orders(seed, &m, &publishes, expected, plan.as_ref());

    assert_eq!(
        sim, threaded,
        "sim and runtime disagree on some per-group delivery order"
    );
    assert_eq!(
        threaded, socket,
        "runtime and socket cluster disagree on some per-group delivery order"
    );

    if plan.is_some() {
        assert!(
            bus.fault_stats().recovery.crashes > 0,
            "the fault plan actually crashed a simulated atom"
        );
        assert!(
            cluster.stats().recovery.crashes > 0,
            "the fault plan actually crashed a runtime node"
        );
    }
}

#[test]
fn fault_free_runs_agree() {
    assert_equivalent(11, None);
    assert_equivalent(47, None);
}

#[test]
fn crash_window_runs_agree() {
    // Index 0 names atom 0 in the simulator and sequencing node 0 in both
    // cluster drivers (see module docs); all always exist. The window
    // spans the publish burst, so frames park (sim) / queue (runtime) /
    // get retransmitted to the respawned process (socket) and replay.
    let plan = FaultPlan::new().crash(
        0,
        SimTime::from_micros(5_000),
        SimTime::from_micros(40_000),
    );
    assert_equivalent(11, Some(plan));
}

#[test]
fn late_crash_window_runs_agree() {
    // A different seed and a window that opens after most snapshots have
    // covered the burst: recovery restores from the checkpoint instead of
    // replaying the whole stream.
    let plan = FaultPlan::new().crash(
        0,
        SimTime::from_micros(20_000),
        SimTime::from_micros(45_000),
    );
    assert_equivalent(23, Some(plan));
}

/// Per-(group, receiver) delivered `(message id, epoch)` pairs, in
/// delivery order — the churn variant of [`GroupOrders`], which also
/// pins which configuration epoch sequenced each message.
type ChurnOrders = BTreeMap<(GroupId, NodeId), Vec<(u64, u64)>>;

/// The fixed churn schedule all three drivers replay: crash sequencing
/// party 0, publish a burst into the outage (epoch 0), stage a join of
/// `n4` into `g1` while that burst is still in flight, publish a second
/// burst that parks behind the handoff, recover, complete the handoff,
/// and drain. Returns (initial membership, next membership, epoch-0
/// burst, epoch-1 burst, expected delivery total).
#[allow(clippy::type_complexity)]
fn churn_schedule() -> (
    Membership,
    Membership,
    Vec<(NodeId, GroupId)>,
    Vec<(NodeId, GroupId)>,
    usize,
) {
    let n = NodeId;
    let g = GroupId;
    let m1 = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    let m2 = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3), n(4)]),
    ]);
    let burst_a = vec![(n(0), g(0)), (n(3), g(1)), (n(1), g(0)), (n(2), g(1))];
    let burst_b = vec![(n(3), g(1)), (n(0), g(0)), (n(4), g(1))];
    let expected_a: usize = burst_a.iter().map(|&(_, grp)| m1.group_size(grp)).sum();
    let expected_b: usize = burst_b.iter().map(|&(_, grp)| m2.group_size(grp)).sum();
    (m1, m2, burst_a, burst_b, expected_a + expected_b)
}

fn churn_orders_sim(bus: &OrderedPubSub, m: &Membership) -> ChurnOrders {
    let mut orders = ChurnOrders::new();
    for node in m.nodes() {
        for d in bus.delivered(node) {
            orders
                .entry((d.group, node))
                .or_default()
                .push((d.id.0, d.epoch));
        }
    }
    orders
}

fn churn_orders(deliveries: &BTreeMap<NodeId, Vec<Message>>) -> ChurnOrders {
    let mut orders = ChurnOrders::new();
    for (&node, msgs) in deliveries {
        for msg in msgs {
            orders
                .entry((msg.group, node))
                .or_default()
                .push((msg.id.0, msg.epoch));
        }
    }
    orders
}

/// ISSUE 8 satellite: the churn-aware three-way oracle. The same seeded
/// reconfiguration schedule — a SIGKILL (or its driver-level equivalent)
/// landing *inside* the epoch handoff — runs through the simulator, the
/// threaded runtime, and the socket deployment, and all three must agree
/// on every per-(group, receiver) delivery order *and* on which epoch
/// sequenced every message.
#[test]
fn churn_with_crash_inside_handoff_agrees() {
    let seed = 11u64;
    let (m1, m2, burst_a, burst_b, expected) = churn_schedule();

    // Simulator: atom 0 is down from just after time zero until well
    // after the burst, so the epoch-0 drain spans a crash + recovery.
    let mut bus = OrderedPubSub::new(&m1);
    bus.apply_fault_plan(FaultPlan::new().crash(
        0,
        SimTime::from_micros(1_000),
        SimTime::from_micros(30_000),
    ));
    for (k, &(node, group)) in burst_a.iter().enumerate() {
        bus.publish_at(SimTime::from_micros((k as u64 + 1) * 700), node, group, vec![])
            .unwrap();
    }
    let next_graph = GraphBuilder::new().build(&m2);
    assert_eq!(bus.begin_reconfigure(&m2, next_graph).unwrap(), 1);
    for (k, &(node, group)) in burst_b.iter().enumerate() {
        // Strictly increasing times past the recovery window keep the
        // parked injection order identical to the publish order.
        bus.publish_at(
            SimTime::from_micros(100_000 + (k as u64 + 1) * 700),
            node,
            group,
            vec![],
        )
        .unwrap();
    }
    assert_eq!(bus.parked_publishes(), burst_b.len());
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0, "sim delivered everything");
    assert!(!bus.reconfig_pending(), "sim handoff completed");
    assert_eq!(bus.epoch(), 1);
    assert!(
        bus.fault_stats().recovery.crashes > 0,
        "the sim crash window actually fired inside the handoff"
    );
    let sim = churn_orders_sim(&bus, &m2);
    assert_eq!(sim.values().map(Vec::len).sum::<usize>(), expected);

    // Threaded runtime: a crashed node thread plays the SIGKILL.
    let config = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&m1, config.clone());
    assert!(cluster.crash_node(0));
    for &(node, group) in &burst_a {
        cluster.publish(node, group, vec![]).unwrap();
    }
    assert_eq!(cluster.begin_reconfigure(&m2), Ok(1));
    for &(node, group) in &burst_b {
        cluster.publish(node, group, vec![]).unwrap();
    }
    assert_eq!(cluster.parked_publishes(), burst_b.len());
    match cluster.complete_reconfigure(Duration::from_millis(300)) {
        // The epoch-0 drain did not need the crashed node (colocation is
        // seed-dependent); the rebuild revives it for epoch 1 anyway.
        Ok(1) => {}
        Err(RuntimeError::Timeout { .. }) => {
            assert!(cluster.reconfig_pending(), "a failed drain stays pending");
            assert!(cluster.restart_node(0));
            assert_eq!(cluster.complete_reconfigure(Duration::from_secs(30)), Ok(1));
        }
        other => panic!("unexpected handoff outcome: {other:?}"),
    }
    assert_eq!(cluster.epoch(), 1);
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    cluster.shutdown();
    assert_eq!(cluster.stats().recovery.crashes, 1);
    let threaded = churn_orders(&deliveries);

    // Socket deployment: a real SIGKILL against a real child process,
    // inside a real epoch handoff.
    let mut sock = DeployCluster::start_with_binary(&m1, config, Some(seqnet_binary()))
        .expect("socket cluster starts");
    assert!(sock.kill_node(0));
    for &(node, group) in &burst_a {
        sock.publish(node, group, vec![]).unwrap();
    }
    assert_eq!(sock.begin_reconfigure(&m2), Ok(1));
    for &(node, group) in &burst_b {
        sock.publish(node, group, vec![]).unwrap();
    }
    assert_eq!(sock.parked_publishes(), burst_b.len());
    match sock.complete_reconfigure(Duration::from_millis(300)) {
        Ok(1) => {}
        Ok(e) => panic!("handoff activated wrong epoch {e}"),
        Err(_) => {
            assert!(sock.reconfig_pending(), "a failed drain stays pending");
            sock.respawn_node(0).expect("killed node respawns");
            assert_eq!(sock.complete_reconfigure(Duration::from_secs(60)), Ok(1));
        }
    }
    assert_eq!(sock.epoch(), 1);
    let deliveries = sock
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .expect("socket cluster delivers everything");
    let stats = sock.shutdown();
    assert_eq!(stats.recovery.crashes, 1, "exactly one real SIGKILL");
    let socket = churn_orders(&deliveries);

    assert_no_duplicates(
        &socket.iter().map(|(k, v)| (*k, v.iter().map(|&(id, _)| id).collect())).collect(),
        "socket",
    );
    assert_eq!(
        sim, threaded,
        "sim and runtime disagree under churn on some per-group delivery order or epoch stamp"
    );
    assert_eq!(
        threaded, socket,
        "runtime and socket cluster disagree under churn on some per-group delivery order or epoch stamp"
    );

    // Epoch stamps: burst A ids (0..4) sequenced under epoch 0, parked
    // burst B ids (4..7) under epoch 1, at every driver and receiver.
    for ((group, node), seq) in &socket {
        for &(id, epoch) in seq {
            let want = if (id as usize) < burst_a.len() { 0 } else { 1 };
            assert_eq!(epoch, want, "{node} in {group}: message {id} epoch stamp");
        }
    }
    // The joiner only exists in epoch 1 and sees exactly the parked g1
    // publishes, in publish order.
    assert_eq!(
        socket[&(GroupId(1), NodeId(4))],
        vec![(4, 1), (6, 1)],
        "joiner sees exactly the epoch-1 g1 traffic"
    );
}

/// ISSUE 10 satellite: the coalescing + scratch-buffer wire path must be
/// order- and payload-transparent. The same seeded workload and crash
/// plan run through the threaded runtime twice — once unbatched (every
/// frame its own `Body::Data`), once with coalescing on, which exercises
/// the scratch-buffer flush path (`release_held_wire`: lone frames as
/// `Body::Data`, consecutive runs as `Body::DataBatch`) plus replay after
/// a crash — and every per-(group, receiver) delivery sequence, message
/// ids *and* payload bytes, must be identical.
#[test]
fn coalesced_scratch_path_matches_unbatched_under_crash() {
    let seed = 31u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ZipfGroups::new(8, 4).with_min_size(2).sample(&mut rng);
    let (publishes, expected) = workload(&m, 2);
    let plan = FaultPlan::new().crash(
        0,
        SimTime::from_micros(5_000),
        SimTime::from_micros(40_000),
    );

    type ByteOrders = BTreeMap<(GroupId, NodeId), Vec<(u64, Vec<u8>)>>;
    let run = |coalesce: bool| -> (ByteOrders, BTreeMap<usize, u64>) {
        let mut cluster = Cluster::start(
            &m,
            ClusterConfig {
                seed,
                coalesce,
                ..ClusterConfig::default()
            },
        );
        for (k, &(node, group)) in publishes.iter().enumerate() {
            // Distinct payloads make the equivalence byte-level, not just
            // id-level.
            cluster
                .publish(node, group, vec![k as u8, (k >> 8) as u8, 0xA5])
                .unwrap();
        }
        cluster.run_fault_plan(&plan);
        let deliveries = cluster
            .wait_for_deliveries(expected, Duration::from_secs(60))
            .unwrap();
        cluster.shutdown();
        assert!(
            cluster.stats().recovery.crashes > 0,
            "the crash window actually fired (coalesce={coalesce})"
        );
        let mut orders = ByteOrders::new();
        for (&node, msgs) in &deliveries {
            for msg in msgs {
                orders
                    .entry((msg.group, node))
                    .or_default()
                    .push((msg.id.0, msg.payload.as_ref().to_vec()));
            }
        }
        (orders, cluster.batch_size_counts())
    };

    let (unbatched, plain_sizes) = run(false);
    let (batched, coalesced_sizes) = run(true);
    assert_eq!(
        unbatched.values().map(Vec::len).sum::<usize>(),
        expected,
        "unbatched run: zero loss"
    );
    assert!(
        plain_sizes.keys().all(|&s| s == 1),
        "coalescing off must emit single-frame writes only: {plain_sizes:?}"
    );
    assert!(
        coalesced_sizes.keys().any(|&s| s >= 2),
        "the coalesced run never produced a multi-frame batch: {coalesced_sizes:?}"
    );
    assert_eq!(
        unbatched, batched,
        "coalesced scratch-buffer path changed a delivery order or payload under crash replay"
    );
}

#[test]
fn double_crash_window_runs_agree() {
    // Two kill/respawn cycles on the same node: the second incarnation
    // restores the snapshot the first one wrote after its own recovery.
    let plan = FaultPlan::new()
        .crash(0, SimTime::from_micros(4_000), SimTime::from_micros(24_000))
        .crash(
            0,
            SimTime::from_micros(44_000),
            SimTime::from_micros(64_000),
        );
    assert_equivalent(47, Some(plan));
}
