//! Property tests of the trace plane's span reconstruction
//! (PROTOCOL.md §15): for arbitrary memberships, workloads, and fault
//! plans, every delivered message must reconstruct into a *complete*
//! span tree whose typed latency components are exact — the decomposition
//! (`stamp_wait + wire + group_gap_wait + atom_gap_wait`) sums to the
//! end-to-end latency per delivery, not just on average. And because the
//! simulator and the threaded runtime drive the same sans-I/O cores, the
//! *structure* of every span tree (publisher, stamping atoms, receiving
//! hosts, group-local sequence numbers) must be identical across the two
//! drivers; only timestamps are driver-specific.

mod strategies;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::obs::span::{MessageTrace, TraceSet};
use seqnet::obs::{Recorder, TraceEvent};
use seqnet::runtime::{Cluster, ClusterConfig};
use seqnet::sim::SimTime;
use strategies::{fault_plan, membership_with, MembershipBounds};

/// Small memberships keep each proptest case (which boots a real
/// threaded cluster) affordable.
fn small_membership() -> impl Strategy<Value = Membership> {
    membership_with(MembershipBounds {
        nodes: (4, 7),
        groups: (2, 4),
        members: (2, 4),
    })
}

/// One round of the differential workload: every node publishes once to
/// every group it belongs to, in a single fixed global order.
fn workload(m: &Membership) -> (Vec<(NodeId, GroupId)>, usize) {
    let mut publishes = Vec::new();
    let mut expected = 0usize;
    for node in m.nodes().collect::<Vec<_>>() {
        for group in m.groups_of(node).collect::<Vec<_>>() {
            publishes.push((node, group));
            expected += m.group_size(group);
        }
    }
    (publishes, expected)
}

/// Runs the workload through the simulator (with optional faults) and
/// returns the recorded trace events.
fn sim_events(
    m: &Membership,
    publishes: &[(NodeId, GroupId)],
    plan: Option<&seqnet::sim::FaultPlan>,
) -> Vec<TraceEvent> {
    let mut bus = OrderedPubSub::new(m);
    let rec = Arc::new(Mutex::new(Recorder::new()));
    bus.set_trace_sink(rec.clone());
    if let Some(plan) = plan {
        bus.apply_fault_plan(plan.clone());
    }
    for (k, &(node, group)) in publishes.iter().enumerate() {
        bus.publish_at(SimTime::from_micros((k as u64 + 1) * 700), node, group, vec![])
            .unwrap();
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0, "sim delivered everything");
    let events = rec.lock().unwrap().events().to_vec();
    events
}

/// Runs the same workload through the threaded runtime and returns its
/// trace events.
fn runtime_events(
    seed: u64,
    m: &Membership,
    publishes: &[(NodeId, GroupId)],
    expected: usize,
    plan: Option<&seqnet::sim::FaultPlan>,
) -> Vec<TraceEvent> {
    let config = ClusterConfig {
        seed,
        trace: true,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(m, config);
    for &(node, group) in publishes {
        cluster.publish(node, group, vec![]).unwrap();
    }
    if let Some(plan) = plan {
        cluster.run_fault_plan(plan);
    }
    cluster
        .wait_for_deliveries(expected, Duration::from_secs(60))
        .unwrap();
    cluster.shutdown();
    cluster.trace_events()
}

/// Asserts the per-delivery decomposition identity on every trace in the
/// set: each delivery carries a breakdown whose components sum *exactly*
/// to its end-to-end latency (all values are `u64` micros, so the
/// identity is integer-exact, no tolerance).
fn assert_exact_decomposition(set: &TraceSet, driver: &str) {
    for trace in set.traces() {
        for d in &trace.deliveries {
            let b = d
                .breakdown
                .as_ref()
                .unwrap_or_else(|| panic!("{driver}: msg {} host {} lacks a breakdown", trace.msg, d.host));
            let e2e = d
                .end_to_end
                .unwrap_or_else(|| panic!("{driver}: msg {} host {} lacks end-to-end", trace.msg, d.host));
            assert_eq!(
                b.total(),
                e2e,
                "{driver}: msg {} host {}: components {:?} do not sum to end-to-end {e2e}",
                trace.msg,
                d.host,
                b.components()
            );
            for (name, value) in b.components() {
                assert!(
                    value <= e2e,
                    "{driver}: msg {} host {}: component {name}={value} exceeds e2e {e2e}",
                    trace.msg,
                    d.host
                );
            }
        }
    }
    // The aggregate mirrors the per-delivery identity: summed component
    // histograms equal the summed end-to-end histogram, exactly.
    let b = set.breakdown_histograms();
    assert_eq!(
        b.stamp_wait.sum() + b.wire.sum() + b.group_gap_wait.sum() + b.atom_gap_wait.sum(),
        b.end_to_end.sum(),
        "{driver}: aggregate component sums diverge from aggregate end-to-end"
    );
}

/// The driver-independent skeleton of one span tree: everything fixed by
/// the membership and the global publish order. Timestamps — the only
/// clock-dependent part — are deliberately excluded.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Skeleton {
    group: Option<u64>,
    publish_host: Option<u64>,
    stamped_atoms: BTreeSet<u64>,
    /// Per receiving host: the group-local sequence number delivered.
    deliveries: BTreeMap<u64, Option<u64>>,
}

fn skeleton(trace: &MessageTrace) -> Skeleton {
    Skeleton {
        group: trace.group,
        publish_host: trace.publish_host,
        stamped_atoms: trace.stamps.iter().map(|s| s.atom).collect(),
        deliveries: trace.deliveries.iter().map(|d| (d.host, d.seq)).collect(),
    }
}

fn skeletons(set: &TraceSet) -> BTreeMap<u64, Skeleton> {
    set.traces().map(|t| (t.msg, skeleton(t))).collect()
}

/// Per-(group, host) delivery order, read back *from the span trees* —
/// the trace plane must preserve the property the differential oracle
/// checks on raw deliveries.
fn span_orders(set: &TraceSet) -> BTreeMap<(u64, u64), Vec<u64>> {
    let mut with_seq: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for trace in set.traces() {
        for d in &trace.deliveries {
            let (Some(group), Some(seq)) = (trace.group, d.seq) else {
                continue;
            };
            with_seq.entry((group, d.host)).or_default().push((seq, trace.msg));
        }
    }
    with_seq
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_unstable();
            (k, v.into_iter().map(|(_, msg)| msg).collect())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fault-free runs: every published message reconstructs into a
    /// complete span tree in both drivers, the decomposition is exact,
    /// and the two drivers' span trees are structurally identical.
    #[test]
    fn spans_reconstruct_identically_across_drivers(
        m in small_membership(),
        seed in any::<u64>(),
    ) {
        let (publishes, expected) = workload(&m);
        let sim = TraceSet::from_events(&sim_events(&m, &publishes, None));
        let rt = TraceSet::from_events(&runtime_events(seed, &m, &publishes, expected, None));

        for (set, driver) in [(&sim, "sim"), (&rt, "runtime")] {
            prop_assert_eq!(set.len(), publishes.len(), "{}: one trace per publish", driver);
            prop_assert_eq!(set.incomplete(), 0, "{}: all span trees complete", driver);
            assert_exact_decomposition(set, driver);
        }
        prop_assert_eq!(
            skeletons(&sim),
            skeletons(&rt),
            "sim and runtime span trees diverge structurally"
        );
    }
}

proptest! {
    // Crash windows replay in wall time on the runtime leg, so keep the
    // case count low; each case still covers a fresh (membership, plan).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crashy runs: random fault plans (crash + recovery windows against
    /// party 0, which exists under both the sim's atom-indexed and the
    /// runtime's node-indexed interpretation) must not break the trace
    /// plane — every delivery still reconstructs complete with an exact
    /// decomposition, and the per-(group, host) delivery orders read back
    /// from the span trees agree across drivers.
    #[test]
    fn spans_survive_fault_plans(
        m in small_membership(),
        plan in fault_plan(1, SimTime::from_micros(60_000)),
        seed in any::<u64>(),
    ) {
        let (publishes, expected) = workload(&m);
        let sim = TraceSet::from_events(&sim_events(&m, &publishes, Some(&plan)));
        let rt = TraceSet::from_events(
            &runtime_events(seed, &m, &publishes, expected, Some(&plan)),
        );

        for (set, driver) in [(&sim, "sim"), (&rt, "runtime")] {
            prop_assert_eq!(set.len(), publishes.len(), "{}: one trace per publish", driver);
            prop_assert_eq!(
                set.incomplete(), 0,
                "{}: crash windows must not leave reconstructed spans incomplete", driver
            );
            assert_exact_decomposition(set, driver);
        }
        prop_assert_eq!(
            span_orders(&sim),
            span_orders(&rt),
            "delivery orders read back from span trees diverge across drivers"
        );
    }
}
