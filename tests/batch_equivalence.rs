//! Batched execution equals per-event stepping (PROTOCOL.md §12), proven
//! differentially at two layers:
//!
//! * **Simulator**: the same membership, workload, and fault-plan seed run
//!   through two [`OrderedPubSub`] instances — one with channel-pump
//!   batching (the default), one stepped frame-by-frame via
//!   [`OrderedPubSub::set_batching`]`(false)` — must produce byte-identical
//!   delivery logs (destination, id, virtual delivery time) and identical
//!   fault/recovery accounting, with and without injected faults.
//! * **Core**: chunking one event stream through
//!   [`NodeCore::on_events`] / [`ReceiverCore::offer_batch`] at batch
//!   sizes 1, 2, 7, and 64 must emit exactly the command stream per-event
//!   `on_event` calls produce, in the same order.
//!
//! Together with the checker's `batch-vs-step` oracle (which re-proves the
//! contract on every explored schedule) this pins down the tentpole claim:
//! batching changes allocation and framing, never protocol behavior.

use proptest::collection::vec;
use proptest::prelude::*;
use seqnet::core::proto::{CommandBuf, Event, Frame, NodeCore, ProtocolState, ReceiverCore, Routing};
use seqnet::core::{FaultStats, Message, MessageId, OrderedPubSub};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::GraphBuilder;
use seqnet::sim::{FaultPlan, SimTime};

mod strategies;

/// The batch sizes the issue pins: the degenerate size, a tiny one, a
/// prime that never divides the stream, and one larger than most streams.
const CHUNK_SIZES: [usize; 4] = [1, 2, 7, 64];

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn g(i: u32) -> GroupId {
    GroupId(i)
}

/// One sim run reduced to everything §12 says must be invariant under
/// batching: the sorted delivery log (who got what, when, in virtual
/// time), the fault/recovery counters, and the stuck-message count.
type RunFingerprint = (Vec<(NodeId, u64, SimTime)>, FaultStats, usize);

/// Drives one simulator instance through `schedule`, batched or stepped.
fn run_sim(
    m: &Membership,
    fault_seed: Option<u64>,
    schedule: &[(usize, usize, u64)],
    batched: bool,
) -> RunFingerprint {
    let mut bus = OrderedPubSub::new(m);
    bus.set_batching(batched);
    if let Some(seed) = fault_seed {
        let atoms = bus.graph().num_atoms();
        bus.apply_fault_plan(FaultPlan::randomized(seed, atoms, SimTime::from_ms(40.0)));
    }
    let nodes: Vec<NodeId> = m.nodes().collect();
    let groups: Vec<GroupId> = m.groups().collect();
    for &(s, grp, t) in schedule {
        let group = groups[grp % groups.len()];
        bus.publish_at(SimTime::from_micros(t), nodes[s % nodes.len()], group, vec![])
            .unwrap();
    }
    bus.run_to_quiescence();
    let mut log: Vec<(NodeId, u64, SimTime)> = bus
        .all_deliveries()
        .map(|d| (d.destination, d.id.0, d.delivered))
        .collect();
    log.sort();
    (log, bus.fault_stats(), bus.stuck_messages())
}

/// The fixed double-overlap topology the core-level chunking tests use;
/// the event streams themselves are seed-randomized.
fn core_setup() -> (Membership, seqnet::overlap::SequencingGraph) {
    let m = Membership::from_groups([
        (g(0), vec![n(0), n(1), n(2)]),
        (g(1), vec![n(1), n(2), n(3)]),
    ]);
    let graph = GraphBuilder::new().build(&m);
    (m, graph)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free runs over arbitrary valid memberships: batched and
    /// stepped execution produce identical delivery logs and deliver
    /// everything.
    #[test]
    fn batched_and_stepped_sims_agree_fault_free(
        m in strategies::membership(),
        schedule in vec((0usize..64, 0usize..64, 0u64..20_000), 1..24),
    ) {
        let batched = run_sim(&m, None, &schedule, true);
        let stepped = run_sim(&m, None, &schedule, false);
        prop_assert_eq!(batched.2, 0, "batched run left messages stuck");
        prop_assert_eq!(&batched, &stepped, "batching changed observable behavior");
    }

    /// The same holds under randomized crash schedules on guaranteed
    /// double-overlapped memberships: identical deliveries *and*
    /// identical recovery accounting ([`FaultStats`] embeds the shared
    /// `RecoveryStats`), so replay after a crash batches transparently.
    #[test]
    fn batched_and_stepped_sims_agree_under_faults(
        m in strategies::overlapped_membership(),
        fault_seed in any::<u64>(),
        schedule in vec((0usize..64, 0usize..64, 0u64..20_000), 1..24),
    ) {
        let batched = run_sim(&m, Some(fault_seed), &schedule, true);
        let stepped = run_sim(&m, Some(fault_seed), &schedule, false);
        prop_assert_eq!(batched.2, 0, "faults deadlocked the batched run");
        prop_assert_eq!(&batched, &stepped, "batching changed faulty-run behavior");
    }

    /// Chunking a node core's ingress stream at every pinned batch size
    /// emits exactly the per-event command stream, in order.
    #[test]
    fn node_core_chunks_of_every_size_match_per_event(seed in any::<u64>()) {
        let (m, graph) = core_setup();
        let routing = Routing::solo(&m, &graph);
        let mut state = seed;
        let events: Vec<Event> = (0..70u64)
            .map(|id| {
                let group = g((seqnet::core::proto::testing::splitmix64(&mut state) % 2) as u32);
                Event::FrameArrived {
                    frame: Frame {
                        msg: Message::new(MessageId(id), n(0), group, Vec::new()),
                        target_atom: graph.ingress(group),
                    },
                }
            })
            .collect();
        let owner = routing.owner_of(graph.ingress(g(0)).unwrap());

        let mut stepped_protocol = ProtocolState::new(&graph);
        let mut stepped = NodeCore::new(owner, false);
        let mut expected = Vec::new();
        for event in events.clone() {
            expected.extend(stepped.on_event(&routing, &mut stepped_protocol, event));
        }

        for chunk in CHUNK_SIZES {
            let mut protocol = ProtocolState::new(&graph);
            let mut core = NodeCore::new(owner, false);
            let mut buf = CommandBuf::new();
            for batch in events.chunks(chunk) {
                core.on_events(&routing, &mut protocol, batch.iter().cloned(), &mut buf);
            }
            prop_assert_eq!(
                format!("{:?}", buf.commands()),
                format!("{expected:?}"),
                "chunk size {} diverged from per-event stepping",
                chunk
            );
        }
    }

    /// Chunking a receiver's (seed-permuted, hence gap-buffering) arrival
    /// stream at every pinned batch size releases exactly the per-event
    /// delivery stream, in order.
    #[test]
    fn receiver_core_chunks_of_every_size_match_per_event(seed in any::<u64>()) {
        let (m, graph) = core_setup();
        let mut protocol = ProtocolState::new(&graph);
        let mut msgs = Vec::new();
        for id in 0..20u64 {
            let mut msg = Message::new(MessageId(id), n(0), g(id as u32 % 2), Vec::new());
            protocol.sequence_fully(&graph, &mut msg);
            msgs.push(msg);
        }
        // Seeded Fisher–Yates permutation: arbitrary arrival order forces
        // the delivery queue to buffer inside and across batches.
        let mut state = seed;
        for i in (1..msgs.len()).rev() {
            let j = (seqnet::core::proto::testing::splitmix64(&mut state) % (i as u64 + 1)) as usize;
            msgs.swap(i, j);
        }
        let events: Vec<Event> = msgs
            .iter()
            .map(|msg| Event::FrameArrived {
                frame: Frame { msg: msg.clone(), target_atom: None },
            })
            .collect();

        let mut stepped = ReceiverCore::new(n(1), &m, &graph);
        let mut expected = Vec::new();
        for event in events.clone() {
            expected.extend(stepped.on_event(event));
        }

        for chunk in CHUNK_SIZES {
            let mut receiver = ReceiverCore::new(n(1), &m, &graph);
            let mut buf = CommandBuf::new();
            for batch in events.chunks(chunk) {
                receiver.offer_batch(batch.iter().cloned(), &mut buf);
            }
            prop_assert_eq!(
                format!("{:?}", buf.commands()),
                format!("{expected:?}"),
                "chunk size {} diverged from per-event receiving",
                chunk
            );
            prop_assert_eq!(
                receiver.queue().delivered_count(),
                stepped.queue().delivered_count()
            );
        }
    }
}

/// The differential above is only meaningful if the batched run actually
/// batches: a burst published at one instant must flow through multi-frame
/// pump batches, while the stepped run stays strictly frame-at-a-time.
#[test]
fn batched_runs_really_coalesce_and_stepped_runs_really_do_not() {
    let m = Membership::from_groups([(g(0), vec![n(0), n(1), n(2)])]);
    let run = |batched: bool| {
        let mut bus = OrderedPubSub::new(&m);
        bus.set_batching(batched);
        for i in 0..16u64 {
            bus.publish_at(SimTime::from_micros(100), n(0), g(0), vec![i as u8])
                .unwrap();
        }
        bus.run_to_quiescence();
        assert_eq!(bus.all_deliveries().count(), 16 * 3);
        bus.batch_size_counts().clone()
    };
    let batched = run(true);
    assert!(
        batched.keys().any(|&size| size > 1),
        "a same-instant burst must produce at least one multi-frame batch: {batched:?}"
    );
    let stepped = run(false);
    assert!(
        stepped.keys().all(|&size| size == 1),
        "stepped mode must stay frame-at-a-time: {stepped:?}"
    );
}
