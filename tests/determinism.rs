//! Determinism canaries: identical seeds must produce bit-identical
//! behavior across the whole stack — the property every experiment and
//! every regression bisect depends on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::core::{NetworkSetup, OrderedPubSub};
use seqnet::membership::workload::ZipfGroups;
use seqnet::membership::NodeId;
use seqnet::overlap::{Colocation, GraphBuilder};
use seqnet::topology::TransitStubParams;

fn full_run(seed: u64) -> Vec<(NodeId, u64, u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let setup = NetworkSetup::generate(&TransitStubParams::small(), 16, 4, &mut rng);
    let m = ZipfGroups::new(16, 6).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&m, &setup, &mut rng);
    for node in m.nodes().collect::<Vec<_>>() {
        for group in m.groups_of(node).collect::<Vec<_>>() {
            bus.publish(node, group, vec![]).unwrap();
        }
    }
    bus.run_to_quiescence();
    bus.all_deliveries()
        .map(|d| {
            (
                d.destination,
                d.id.0,
                d.arrived.as_micros(),
                d.delivered.as_micros(),
            )
        })
        .collect()
}

#[test]
fn end_to_end_runs_are_reproducible() {
    let a = full_run(42);
    let b = full_run(42);
    assert_eq!(a, b, "same seed, same run");
    assert!(!a.is_empty());
    let c = full_run(43);
    assert_ne!(a, c, "different seed, different timings");
}

#[test]
fn graph_construction_is_deterministic() {
    let m = ZipfGroups::new(64, 16).sample(&mut StdRng::seed_from_u64(7));
    let g1 = GraphBuilder::new().build(&m);
    let g2 = GraphBuilder::new().build(&m);
    assert_eq!(g1, g2);
    let c1 = Colocation::compute(&g1, &mut StdRng::seed_from_u64(9));
    let c2 = Colocation::compute(&g2, &mut StdRng::seed_from_u64(9));
    assert_eq!(c1.num_overlap_nodes(), c2.num_overlap_nodes());
    for atom in g1.atoms() {
        assert_eq!(c1.node_of(atom.id), c2.node_of(atom.id));
    }
}

#[test]
fn workloads_are_deterministic() {
    let w = ZipfGroups::new(128, 32);
    let a = w.sample(&mut StdRng::seed_from_u64(5));
    let b = w.sample(&mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

/// A shrunk model-checker counterexample replays byte for byte: two
/// replays of the same decision list produce identical step logs, and the
/// rendered `seed=… decisions=[…]` line survives a parse/render
/// round-trip — the contract that makes CI-printed traces debuggable.
#[test]
fn counterexample_replays_are_byte_identical() {
    use seqnet_check::{default_oracles, explore, replay, scenario, shrink, ExploreConfig, Outcome};
    use seqnet_sim::ScheduleTrace;

    let sc = scenario::two_group_overlap().with_sabotaged_staging();
    let oracles = default_oracles();
    let Outcome::Fail(cex) = explore(&sc, &oracles, &ExploreConfig::default()) else {
        panic!("sabotaged staging must fail")
    };
    let shrunk = shrink(&sc, &oracles, &cex.trace);

    let a = replay(&sc, &oracles, &shrunk.decisions);
    let b = replay(&sc, &oracles, &shrunk.decisions);
    assert_eq!(a.log, b.log, "replay logs diverged");
    assert_eq!(a.log.as_bytes(), b.log.as_bytes());
    assert!(a.failed(), "shrunk trace still fails");

    let rendered = shrunk.to_string();
    let parsed: ScheduleTrace = rendered.parse().expect("rendered trace parses");
    assert_eq!(parsed, shrunk, "trace round-trips through its rendering");
}
