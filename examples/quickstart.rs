//! Quickstart: ordered delivery across two overlapping groups.
//!
//! Run with: `cargo run --example quickstart`

use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two groups sharing two subscribers (nodes 1 and 2) — a "double
    // overlap". Without cross-group sequencing, nodes 1 and 2 could
    // deliver the groups' messages in different orders.
    let membership = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
        (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
    ]);

    let mut bus = OrderedPubSub::new(&membership);
    println!(
        "sequencing graph: {} overlap atom(s), {} total atoms",
        bus.graph().num_overlap_atoms(),
        bus.graph().num_atoms()
    );

    // Interleave publishes to both groups from different senders.
    for i in 0..6u8 {
        if i % 2 == 0 {
            bus.publish(NodeId(0), GroupId(0), vec![i])?;
        } else {
            bus.publish(NodeId(3), GroupId(1), vec![i])?;
        }
    }
    bus.run_to_quiescence();

    for node in [NodeId(1), NodeId(2)] {
        let order: Vec<String> = bus
            .delivered(node)
            .iter()
            .map(|d| format!("{}@{}", d.id, d.group))
            .collect();
        println!("{node} delivered: {}", order.join(" -> "));
    }

    let o1: Vec<_> = bus.delivered(NodeId(1)).iter().map(|d| d.id).collect();
    let o2: Vec<_> = bus.delivered(NodeId(2)).iter().map(|d| d.id).collect();
    assert_eq!(o1, o2, "overlap members must agree on the order");
    println!("both overlap members delivered all 6 messages in the same order ✓");
    Ok(())
}
