//! Multiplayer network game on a pub/sub world (paper §1.1).
//!
//! The virtual world is a 3x3 grid of regions; each region is a group.
//! Players subscribe to the regions in their area of interest (their own
//! region plus neighbors). Players with overlapping areas of interest must
//! see common events in the same order — "if one player shoots and hits
//! another, all should see the events in order, else physical rules are
//! violated."
//!
//! Run with: `cargo run --example network_game`

use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};

const GRID: u32 = 3;

/// The group of the region at grid coordinates (x, y).
fn region(x: u32, y: u32) -> GroupId {
    GroupId(y * GRID + x)
}

/// The regions a player standing in (x, y) subscribes to: its region and
/// the 4-neighborhood (interest management).
fn area_of_interest(x: u32, y: u32) -> Vec<GroupId> {
    let mut out = vec![region(x, y)];
    if x > 0 {
        out.push(region(x - 1, y));
    }
    if x + 1 < GRID {
        out.push(region(x + 1, y));
    }
    if y > 0 {
        out.push(region(x, y - 1));
    }
    if y + 1 < GRID {
        out.push(region(x, y + 1));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight players scattered over the grid; several share regions.
    let positions: Vec<(u32, u32)> = vec![
        (0, 0),
        (1, 0),
        (1, 1),
        (1, 1),
        (2, 1),
        (0, 1),
        (2, 2),
        (1, 2),
    ];
    let mut membership = Membership::new();
    for (player, &(x, y)) in positions.iter().enumerate() {
        for grp in area_of_interest(x, y) {
            membership.subscribe(NodeId(player as u32), grp);
        }
    }

    let mut game = OrderedPubSub::new(&membership);
    println!(
        "{} players, {} regions, {} double overlaps sequenced by {} atoms",
        positions.len(),
        membership.num_groups(),
        game.graph().num_overlap_atoms(),
        game.graph().num_atoms(),
    );

    // Player 2 shoots in region (1,1); the hit is a causal consequence
    // published by player 3 (also in (1,1)) only after it sees the shot.
    let shot = game.publish_causal(NodeId(2), region(1, 1), b"shot".to_vec())?;
    let hit = game.publish_after(NodeId(3), shot, region(1, 1), b"hit".to_vec())?;

    // Meanwhile unrelated movement events happen everywhere.
    for (player, &(x, y)) in positions.iter().enumerate() {
        game.publish_causal(NodeId(player as u32), region(x, y), b"move".to_vec())?;
    }
    game.run_to_quiescence();
    assert_eq!(game.stuck_messages(), 0);

    // Every observer of region (1,1) saw the shot before the hit.
    for node in membership.members(region(1, 1)).collect::<Vec<_>>() {
        let order: Vec<_> = game.delivered(node).iter().map(|d| d.id).collect();
        let s = order.iter().position(|&m| m == shot).expect("saw the shot");
        let h = order.iter().position(|&m| m == hit).expect("saw the hit");
        assert!(s < h, "{node} saw the hit before the shot!");
        println!("{node}: shot at position {s}, hit at position {h} ✓");
    }

    // Any two players watching the same pair of regions agree on the
    // relative order of all events they both received.
    let players: Vec<NodeId> = membership.nodes().collect();
    for (i, &a) in players.iter().enumerate() {
        for &b in &players[i + 1..] {
            let da: Vec<_> = game.delivered(a).iter().map(|d| d.id).collect();
            let db: Vec<_> = game.delivered(b).iter().map(|d| d.id).collect();
            let common: Vec<_> = da.iter().filter(|m| db.contains(m)).collect();
            let common_b: Vec<_> = db.iter().filter(|m| da.contains(m)).collect();
            assert_eq!(common, common_b, "{a} and {b} disagree");
        }
    }
    println!("all {} players agree on every common event ✓", players.len());
    Ok(())
}
