//! Content-based subscriptions end-to-end: filters map to groups, events
//! route to every matching group, and the sequencing network keeps
//! overlapping subscribers consistent (the paper's stock-ticker model,
//! §1.1).
//!
//! Run with: `cargo run --example content_filters`

use seqnet::core::OrderedPubSub;
use seqnet::membership::filter::{ContentRouter, Event, Filter};
use seqnet::membership::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Brokers subscribe with content filters; equal filters share groups.
    let mut router = ContentRouter::new();
    let tech = Filter::new().eq("sector", "tech");
    let energy = Filter::new().eq("sector", "energy");
    let small_caps = Filter::new().range("price_cents", 0, 20_000);

    for broker in [NodeId(0), NodeId(1)] {
        router.subscribe(broker, tech.clone());
        router.subscribe(broker, small_caps.clone());
    }
    router.subscribe(NodeId(2), tech.clone());
    router.subscribe(NodeId(3), energy.clone());
    router.subscribe(NodeId(3), small_caps.clone());

    println!(
        "{} filter groups over {} brokers",
        router.num_groups(),
        router.membership().num_nodes()
    );

    // The ordering layer runs on the membership the filters induce.
    let mut bus = OrderedPubSub::new(router.membership());
    println!(
        "double overlaps sequenced: {}",
        bus.graph().num_overlap_atoms()
    );

    // The exchange (node 10 as gateway) publishes trades; each trade goes
    // to every matching filter group.
    let trades = [
        Event::new().set("symbol", "APX").set("sector", "tech").set("price_cents", 12_000),
        Event::new().set("symbol", "OILX").set("sector", "energy").set("price_cents", 80_000),
        Event::new().set("symbol", "CHIP").set("sector", "tech").set("price_cents", 95_000),
        Event::new().set("symbol", "SOLR").set("sector", "energy").set("price_cents", 9_000),
    ];
    for trade in &trades {
        let symbol = trade.get("symbol").unwrap().to_string();
        for group in router.route(trade) {
            // The publisher must be a member for causal order; gateways
            // usually subscribe to everything they publish. Here the
            // first member republishes on the gateway's behalf.
            let sender = router
                .membership()
                .members(group)
                .next()
                .expect("matching group has members");
            bus.publish(sender, group, symbol.clone().into_bytes())?;
        }
    }
    bus.run_to_quiescence();
    assert_eq!(bus.stuck_messages(), 0);

    // A trade matching several of a broker's filters arrives once per
    // group; applications deduplicate by trade id. The *relative order*
    // of distinct trades is what consistency needs.
    for broker in [NodeId(0), NodeId(1), NodeId(2), NodeId(3)] {
        let mut seen = std::collections::BTreeSet::new();
        let feed: Vec<String> = bus
            .delivered(broker)
            .iter()
            .map(|d| String::from_utf8_lossy(&d.payload).into_owned())
            .filter(|s| seen.insert(s.clone()))
            .collect();
        println!("{broker} applies: {}", feed.join(" "));
    }

    // Brokers 0 and 1 hold identical filters: identical state machines.
    let f0: Vec<_> = bus.delivered(NodeId(0)).iter().map(|d| d.id).collect();
    let f1: Vec<_> = bus.delivered(NodeId(1)).iter().map(|d| d.id).collect();
    assert_eq!(f0, f1);
    println!("brokers with identical filters applied identical sequences ✓");
    Ok(())
}
