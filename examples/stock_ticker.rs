//! Stock-ticker dissemination (paper §1.1): trades flow to consumers whose
//! subscriptions filter by sector; brokerage firms subscribing to the same
//! sectors must apply updates in the same order to stay consistent.
//!
//! Run with: `cargo run --example stock_ticker`

use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};
use std::collections::BTreeMap;

const TECH: GroupId = GroupId(0);
const ENERGY: GroupId = GroupId(1);
const FINANCE: GroupId = GroupId(2);
const HEALTHCARE: GroupId = GroupId(3);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six brokerage firms with different sector filters. The exchange
    // gateways (nodes 10 and 11) publish trades and subscribe too, so the
    // feed is causal.
    let firms: Vec<(NodeId, Vec<GroupId>)> = vec![
        (NodeId(0), vec![TECH, FINANCE]),
        (NodeId(1), vec![TECH, FINANCE]),
        (NodeId(2), vec![TECH, ENERGY]),
        (NodeId(3), vec![ENERGY, HEALTHCARE]),
        (NodeId(4), vec![FINANCE, HEALTHCARE]),
        (NodeId(5), vec![TECH, ENERGY, FINANCE, HEALTHCARE]),
    ];
    let mut membership = Membership::new();
    for (firm, sectors) in &firms {
        for &s in sectors {
            membership.subscribe(*firm, s);
        }
    }
    for gateway in [NodeId(10), NodeId(11)] {
        for sector in [TECH, ENERGY, FINANCE, HEALTHCARE] {
            membership.subscribe(gateway, sector);
        }
    }

    let mut ticker = OrderedPubSub::new(&membership);
    println!(
        "{} sectors, {} double overlaps, {} sequencing atoms",
        membership.num_groups(),
        ticker.graph().num_overlap_atoms(),
        ticker.graph().num_atoms()
    );

    // A burst of trades from both gateways, alternating sectors.
    let trades = [
        (NodeId(10), TECH, "AAPL +1.2"),
        (NodeId(11), FINANCE, "JPM -0.4"),
        (NodeId(10), ENERGY, "XOM +0.7"),
        (NodeId(11), TECH, "MSFT +0.3"),
        (NodeId(10), HEALTHCARE, "PFE -0.1"),
        (NodeId(11), ENERGY, "CVX +0.2"),
        (NodeId(10), FINANCE, "GS +1.0"),
        (NodeId(11), HEALTHCARE, "JNJ +0.5"),
    ];
    for (gw, sector, quote) in trades {
        ticker.publish_causal(gw, sector, quote.as_bytes().to_vec())?;
    }
    ticker.run_to_quiescence();
    assert_eq!(ticker.stuck_messages(), 0);

    // Print each firm's applied update stream.
    let mut streams: BTreeMap<NodeId, Vec<String>> = BTreeMap::new();
    for (firm, _) in &firms {
        let stream: Vec<String> = ticker
            .delivered(*firm)
            .iter()
            .map(|d| format!("{}", d.id))
            .collect();
        println!("{firm} applies: {}", stream.join(" "));
        streams.insert(*firm, stream);
    }

    // Firms 0 and 1 share exactly the TECH+FINANCE filter: identical state.
    assert_eq!(streams[&NodeId(0)], streams[&NodeId(1)]);
    println!("firms with identical filters applied identical update sequences ✓");

    // Any two firms agree on the relative order of common updates, so
    // replicated state derived from shared sectors is consistent.
    let ids: Vec<NodeId> = firms.iter().map(|(f, _)| *f).collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let sa = &streams[&a];
            let sb = &streams[&b];
            let common_a: Vec<_> = sa.iter().filter(|m| sb.contains(m)).collect();
            let common_b: Vec<_> = sb.iter().filter(|m| sa.contains(m)).collect();
            assert_eq!(common_a, common_b, "{a} vs {b}");
        }
    }
    println!("all pairwise common-update orders agree ✓");
    Ok(())
}
