//! Internet messaging (paper §1.1): chat rooms and presence as pub/sub
//! groups. "Responses should always follow the messages to which they
//! respond" — causal order makes conversations readable.
//!
//! Run with: `cargo run --example chat_messaging`

use seqnet::core::OrderedPubSub;
use seqnet::membership::{GroupId, Membership, NodeId};

const ROOM_RUST: GroupId = GroupId(0);
const ROOM_DIST: GroupId = GroupId(1);
const PRESENCE: GroupId = GroupId(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Users: alice and bob hang out in both rooms; carol only in #rust,
    // dave only in #dist-sys. Everyone watches presence.
    let alice = NodeId(0);
    let bob = NodeId(1);
    let carol = NodeId(2);
    let dave = NodeId(3);
    let membership = Membership::from_groups([
        (ROOM_RUST, vec![alice, bob, carol]),
        (ROOM_DIST, vec![alice, bob, dave]),
        (PRESENCE, vec![alice, bob, carol, dave]),
    ]);

    let mut chat = OrderedPubSub::new(&membership);
    println!(
        "3 groups, {} double overlaps sequenced by {} atoms",
        chat.graph().num_overlap_atoms(),
        chat.graph().num_atoms()
    );

    // Alice signs on, then asks a question in #rust; carol replies only
    // after seeing the question; alice thanks her only after the reply.
    let online = chat.publish_causal(alice, PRESENCE, b"alice is online".to_vec())?;
    let question = chat.publish_causal(alice, ROOM_RUST, b"how do I pin a future?".to_vec())?;
    let reply = chat.publish_after(carol, question, ROOM_RUST, b"Box::pin it".to_vec())?;
    let thanks = chat.publish_after(alice, reply, ROOM_RUST, b"thanks!".to_vec())?;
    // Cross-room chatter meanwhile.
    chat.publish_causal(dave, ROOM_DIST, b"anyone read the Middleware'06 paper?".to_vec())?;
    chat.publish_causal(bob, ROOM_DIST, b"reading it now".to_vec())?;

    chat.run_to_quiescence();
    assert_eq!(chat.stuck_messages(), 0);

    for user in [alice, bob, carol, dave] {
        let transcript: Vec<String> = chat
            .delivered(user)
            .iter()
            .map(|d| String::from_utf8_lossy(&d.payload).into_owned())
            .collect();
        println!("{user} sees: {}", transcript.join(" | "));
    }

    // Conversation threads read correctly at every member of #rust.
    for user in [alice, bob, carol] {
        let order: Vec<_> = chat.delivered(user).iter().map(|d| d.id).collect();
        let pos = |m| order.iter().position(|&x| x == m).expect("delivered");
        assert!(pos(question) < pos(reply), "{user}: reply before question");
        assert!(pos(reply) < pos(thanks), "{user}: thanks before reply");
        println!("{user}: question -> reply -> thanks in order ✓");
    }
    // Presence precedes the question everywhere both are seen, because
    // alice published them causally in that order and subscribes to both.
    for user in [alice, bob] {
        let order: Vec<_> = chat.delivered(user).iter().map(|d| d.id).collect();
        let pos = |m| order.iter().position(|&x| x == m).expect("delivered");
        assert!(pos(online) < pos(question), "{user}: question before sign-on");
    }
    println!("sign-on precedes the first message for common observers ✓");
    Ok(())
}
