//! Deploying the protocol across real threads with lossy links.
//!
//! Sequencing nodes and subscriber hosts each run on their own thread,
//! connected by reliable FIFO links (link-level sequence numbers, acks,
//! retransmission — the paper's §3.1 buffers). A 20% frame-loss injector
//! shows the ordering guarantee surviving an unreliable transport.
//!
//! Run with: `cargo run --example threaded_cluster`

use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::runtime::{Cluster, ClusterConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let membership = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
        (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
        (GroupId(2), vec![NodeId(0), NodeId(2), NodeId(3)]),
    ]);

    let config = ClusterConfig {
        drop_probability: 0.2,
        retransmit_timeout: Duration::from_millis(5),
        seed: 7,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&membership, config);
    println!(
        "{} sequencing-node threads, {} host threads, 20% frame loss",
        cluster.num_sequencing_nodes(),
        membership.num_nodes()
    );

    let mut expected = 0usize;
    for i in 0..9u32 {
        let group = GroupId(i % 3);
        let sender = membership.members(group).next().expect("non-empty");
        cluster.publish(sender, group, vec![i as u8])?;
        expected += membership.group_size(group);
    }

    let deliveries = cluster.wait_for_deliveries(expected, Duration::from_secs(30))?;
    for (node, msgs) in &deliveries {
        let order: Vec<String> = msgs.iter().map(|m| m.id.to_string()).collect();
        println!("{node} delivered {} messages: {}", msgs.len(), order.join(" "));
    }

    // Nodes 1 and 2 share groups 0 and 1; nodes 0 and 2 share 0 and 2 —
    // common messages must agree pairwise.
    let ids = |n: NodeId| -> Vec<_> { deliveries[&n].iter().map(|m| m.id).collect() };
    for (a, b) in [(NodeId(1), NodeId(2)), (NodeId(0), NodeId(2)), (NodeId(2), NodeId(3))] {
        let (da, db) = (ids(a), ids(b));
        let ca: Vec<_> = da.iter().filter(|m| db.contains(m)).collect();
        let cb: Vec<_> = db.iter().filter(|m| da.contains(m)).collect();
        assert_eq!(ca, cb, "{a} and {b} disagree");
    }
    cluster.shutdown();
    let stats = cluster.stats();
    println!(
        "link stats: {} frames sent, {} dropped, {} retransmitted, {} duplicates",
        stats.frames_sent, stats.frames_dropped, stats.retransmissions, stats.duplicates
    );
    println!("consistent order despite frame loss ✓");
    Ok(())
}
