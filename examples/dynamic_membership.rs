//! Dynamic membership: groups form, overlap, and dissolve at runtime
//! (the paper's §5 future work, via quiescent incremental reconfiguration).
//!
//! Run with: `cargo run --example dynamic_membership`

use seqnet::core::DynamicOrderedPubSub;
use seqnet::membership::{GroupId, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut bus = DynamicOrderedPubSub::new();
    let lobby = GroupId(0);
    let raid = GroupId(1);

    // Four players gather in the lobby.
    for p in 0..4u32 {
        bus.join(NodeId(p), lobby)?;
    }
    bus.publish(NodeId(0), lobby, b"lfg: raid at 9".to_vec())?;
    bus.run_to_quiescence();
    println!(
        "lobby formed: {} members, {} overlap atoms",
        bus.membership().group_size(lobby),
        bus.engine().graph().num_overlap_atoms()
    );

    // Two of them also join the raid group: a double overlap appears and
    // cross-group ordering kicks in.
    bus.join(NodeId(0), raid)?;
    bus.join(NodeId(1), raid)?;
    println!(
        "raid group overlaps the lobby: {} overlap atom(s)",
        bus.engine().graph().num_overlap_atoms()
    );
    bus.publish(NodeId(0), lobby, b"starting".to_vec())?;
    bus.publish(NodeId(1), raid, b"pulling the boss".to_vec())?;
    bus.run_to_quiescence();

    let o0: Vec<_> = bus.delivered(NodeId(0)).iter().map(|d| d.id).collect();
    let o1: Vec<_> = bus.delivered(NodeId(1)).iter().map(|d| d.id).collect();
    let common0: Vec<_> = o0.iter().filter(|m| o1.contains(m)).collect();
    let common1: Vec<_> = o1.iter().filter(|m| o0.contains(m)).collect();
    assert_eq!(common0, common1, "overlap members agree");
    println!("players 0 and 1 agree on all common events ✓");

    // A latecomer joins mid-stream: no history replay, ordered from now on.
    bus.join(NodeId(4), lobby)?;
    bus.publish(NodeId(2), lobby, b"welcome".to_vec())?;
    bus.run_to_quiescence();
    println!(
        "latecomer saw {} event(s) (history is not replayed)",
        bus.delivered(NodeId(4)).len()
    );
    assert_eq!(bus.delivered(NodeId(4)).len(), 1);

    // The raid disbands; its overlap atoms retire lazily, then compaction
    // sheds them.
    bus.leave(NodeId(0), raid)?;
    bus.leave(NodeId(1), raid)?;
    println!("raid disbanded: {} retired atom(s) pending compaction", bus.retired_atoms());
    bus.compact()?;
    println!("compacted: {} retired atom(s) remain", bus.retired_atoms());
    assert_eq!(bus.stuck_messages(), 0);
    println!("dynamic membership lifecycle complete ✓");
    Ok(())
}
