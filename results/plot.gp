# Gnuplot script regenerating figure-style plots from the CSVs in this
# directory. Run from the repository root after the fig* binaries:
#
#   gnuplot results/plot.gp
#
# Produces PNG files next to the CSVs.

set datafile separator ','
set terminal pngcairo size 900,600 font ',11'
set key left top
set grid

# Figure 3: latency-stretch CDFs, one curve per group count.
set output 'results/fig3_latency_stretch.png'
set title 'Figure 3: CDF of latency stretch (128 nodes)'
set xlabel 'latency stretch'
set ylabel 'cumulative fraction of destinations'
set xrange [0:12]
plot for [g in "8 16 32 64"] \
    "< awk -F, -v g=".g." '$1==g' results/fig3_latency_stretch.csv" \
    using 2:3 with steps title g.' groups'

# Figure 4: RDP vs unicast delay scatter.
set output 'results/fig4_rdp.png'
set title 'Figure 4: RDP vs unicast delay (64 groups)'
set xlabel 'unicast delay (ms)'
set ylabel 'relative delay penalty'
set autoscale
set logscale y
plot 'results/fig4_rdp.csv' skip 1 using 1:2 with points pt 7 ps 0.4 notitle
unset logscale y

# Figure 5: sequencing nodes vs groups (both workload series).
set output 'results/fig5_sequencing_nodes.png'
set title 'Figure 5: sequencing nodes vs groups (128 nodes)'
set xlabel 'number of groups'
set ylabel 'sequencing nodes'
plot 'results/fig5_sequencing_nodes.csv' skip 1 using 1:2:3:4 with yerrorbars title 'Zipf (p10-p90)', \
     '' skip 1 using 1:5:6:7 with yerrorbars title 'dense (p10-p90)'

# Figure 6: stress vs groups.
set output 'results/fig6_stress.png'
set title 'Figure 6: sequencing-node stress vs groups (128 nodes)'
set xlabel 'number of groups'
set ylabel 'stress (groups served / total groups)'
plot 'results/fig6_stress.csv' skip 1 using 1:2 with lines title 'Zipf, all traffic', \
     '' skip 1 using 1:5 with lines title 'dense, stamped', \
     '' skip 1 using 1:6 with lines dt 2 title 'dense p90'

# Figure 7: atoms-per-path CDF.
set output 'results/fig7_atoms_on_path.png'
set title 'Figure 7: CDF of stamps per path / nodes (128 nodes)'
set xlabel 'sequencing atoms on path / total nodes'
set ylabel 'cumulative fraction of groups'
set xrange [0:0.06]
plot for [g in "8 16 32 64"] \
    "< awk -F, -v g=".g." '$1==g' results/fig7_atoms_on_path.csv" \
    using 2:3 with steps title g.' groups'
set autoscale

# Figure 8: occupancy sweep.
set output 'results/fig8_occupancy.png'
set title 'Figure 8: overlaps and sequencing nodes vs expected occupancy (128 nodes, 32 groups)'
set xlabel 'expected occupancy'
set ylabel 'count'
plot 'results/fig8_occupancy.csv' skip 1 using 1:2 with linespoints title 'double overlaps', \
     '' skip 1 using 1:3 with linespoints title 'sequencing nodes'

# Sustained load: buffering behavior.
set output 'results/sustained_load.png'
set title 'Ordering-buffer behavior under sustained load'
set xlabel 'messages/s per publisher'
set ylabel 'max buffer depth'
set y2label 'mean buffering (ms)'
set y2tics
plot 'results/sustained_load.csv' skip 1 using 1:6 with linespoints title 'max buffer depth', \
     '' skip 1 using 1:5 axes x1y2 with linespoints title 'mean buffering (ms)'
