//! Command-line driver: run ad-hoc ordering simulations and inspect
//! sequencing graphs without writing code.
//!
//! ```text
//! seqnet sim     [--hosts N] [--groups G] [--messages M] [--seed S] [--topology small|medium|paper]
//!                [--trace-out FILE]
//! seqnet graph   [--hosts N] [--groups G] [--seed S]
//! seqnet cluster [--hosts N] [--groups G] [--messages M] [--seed S] [--chaos 0|1]
//!                [--trace 0|1] [--prom 0|1]
//! seqnet demo
//! seqnet help
//! ```
//!
//! The binary doubles as the sequencing-node child process for `seqnet
//! cluster`: the coordinator respawns it as `seqnet cluster-node ...`,
//! which `run_if_child` intercepts before normal argument parsing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqnet::core::{metrics, NetworkSetup, OrderedPubSub};
use seqnet::membership::workload::{OccupancyGroups, ZipfGroups};
use seqnet::membership::{GroupId, Membership, NodeId};
use seqnet::overlap::{Colocation, GraphBuilder};
use seqnet::obs::Recorder;
use seqnet::topology::TransitStubParams;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

/// Parsed command-line options: `--key value` pairs after the subcommand.
#[derive(Debug, Default, PartialEq)]
struct Options {
    values: BTreeMap<String, String>,
}

impl Options {
    /// Parses `--key value` pairs; returns an error message for stray or
    /// incomplete arguments.
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}' (flags are --key value)"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{key} is missing its value"));
            };
            values.insert(key.to_string(), value.clone());
        }
        Ok(Options { values })
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    fn topology(&self) -> Result<TransitStubParams, String> {
        match self.values.get("topology").map(String::as_str) {
            None | Some("small") => Ok(TransitStubParams::small()),
            Some("medium") => Ok(TransitStubParams::medium()),
            Some("paper") => Ok(TransitStubParams::paper()),
            Some(other) => Err(format!(
                "--topology expects small|medium|paper, got '{other}'"
            )),
        }
    }
}

fn main() -> ExitCode {
    // Become a sequencing-node process if the coordinator spawned us as one.
    seqnet::deploy::run_if_child();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => ("help", &[][..]),
    };
    let result = match cmd {
        "sim" => Options::parse(rest).and_then(|o| cmd_sim(&o)),
        "graph" => Options::parse(rest).and_then(|o| cmd_graph(&o)),
        "cluster" => Options::parse(rest).and_then(|o| cmd_cluster(&o)),
        "demo" => cmd_demo(),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'seqnet help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "seqnet — decentralized message ordering for pub/sub (Middleware 2006)

USAGE:
  seqnet sim   [--hosts N] [--groups G] [--messages M] [--seed S] [--topology small|medium|paper]
               [--trace-out FILE]
               run an ordered pub/sub simulation on a generated topology;
               --trace-out dumps the protocol trace as JSONL
  seqnet graph [--hosts N] [--groups G] [--seed S] [--workload dense|zipf] [--dot FILE]
               build and print a sequencing graph for a Zipf workload
  seqnet cluster [--hosts N] [--groups G] [--messages M] [--seed S] [--chaos 0|1]
                 [--trace 0|1] [--prom 0|1]
               launch a real multi-process cluster on localhost sockets
               (one OS process per sequencing node); --chaos 1 SIGKILLs
               and respawns a node mid-run; --trace 1 writes per-process
               span JSONL into the run dir; --prom 1 prints the merged
               epoch-labelled Prometheus exposition
  seqnet demo  minimal two-group ordering demonstration
  seqnet help  this text"
    );
}

fn cmd_sim(opts: &Options) -> Result<(), String> {
    let hosts = opts.usize_or("hosts", 32)?;
    let groups = opts.usize_or("groups", 8)?;
    let messages = opts.usize_or("messages", 100)?;
    let seed = opts.u64_or("seed", 1)?;
    let params = opts.topology()?;

    let mut rng = StdRng::seed_from_u64(seed);
    let setup = NetworkSetup::generate(&params, hosts, (hosts / 8).max(2), &mut rng);
    let membership = ZipfGroups::new(hosts, groups).with_min_size(2).sample(&mut rng);
    let mut bus = OrderedPubSub::with_network(&membership, &setup, &mut rng);

    // Optional protocol trace: record every event and dump JSONL at the end.
    let recorder = opts.values.get("trace-out").map(|path| {
        let recorder = Arc::new(Mutex::new(Recorder::new()));
        bus.set_trace_sink(recorder.clone());
        (path.clone(), recorder)
    });

    println!(
        "topology: {} routers | hosts: {hosts} | groups: {groups} | overlaps: {}",
        setup.topology.graph.num_routers(),
        bus.graph().num_overlap_atoms(),
    );

    let jobs: Vec<(NodeId, GroupId)> = membership
        .nodes()
        .flat_map(|n| membership.groups_of(n).map(move |g| (n, g)).collect::<Vec<_>>())
        .collect();
    if jobs.is_empty() {
        return Err("workload produced no subscriptions; try more hosts".into());
    }
    for i in 0..messages {
        let (sender, group) = jobs[i % jobs.len()];
        bus.publish(sender, group, vec![]).map_err(|e| e.to_string())?;
    }
    bus.run_to_quiescence();

    let deliveries = bus.all_deliveries().count();
    println!(
        "published {messages} messages -> {deliveries} deliveries, {} stuck",
        bus.stuck_messages()
    );
    let stretch = metrics::stretch_by_destination(bus.all_deliveries());
    if !stretch.is_empty() {
        let values: Vec<f64> = stretch.iter().map(|(_, s)| *s).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        println!("latency stretch over {} destinations: mean {mean:.2}, max {max:.2}", values.len());
    }
    if let (Some(latency), Some(buffering)) = (
        metrics::mean_delivery_latency_ms(bus.all_deliveries()),
        metrics::mean_buffering_ms(bus.all_deliveries()),
    ) {
        println!("mean delivery latency: {latency:.2} ms (buffering {buffering:.3} ms)");
    }
    if let Some((path, recorder)) = recorder {
        let recorder = recorder.lock().expect("trace sink poisoned");
        let events = recorder.events();
        std::fs::write(&path, seqnet::obs::jsonl::to_jsonl_lines(events))
            .map_err(|e| e.to_string())?;
        println!("trace: {} events written to {path}", events.len());
    }
    Ok(())
}

fn cmd_graph(opts: &Options) -> Result<(), String> {
    let hosts = opts.usize_or("hosts", 12)?;
    let groups = opts.usize_or("groups", 4)?;
    let seed = opts.u64_or("seed", 1)?;

    let mut rng = StdRng::seed_from_u64(seed);
    // A dense workload illustrates overlaps better than sparse Zipf.
    let membership = match opts.values.get("workload").map(String::as_str) {
        None | Some("dense") => OccupancyGroups::new(hosts, groups, 0.4).sample(&mut rng),
        Some("zipf") => ZipfGroups::new(hosts, groups).with_min_size(2).sample(&mut rng),
        Some(other) => return Err(format!("--workload expects dense|zipf, got '{other}'")),
    };
    let graph = GraphBuilder::new().build(&membership);
    graph.validate_against(&membership).map_err(|e| e.to_string())?;
    let coloc = Colocation::compute(&graph, &mut rng);

    println!("membership ({hosts} hosts, {groups} groups):");
    for g in membership.groups().collect::<Vec<_>>() {
        let members: Vec<String> = membership.members(g).map(|n| n.to_string()).collect();
        println!("  {g}: {{{}}}", members.join(", "));
    }
    println!(
        "\nsequencing graph: {} overlap atoms, {} total, C1/C2 valid",
        graph.num_overlap_atoms(),
        graph.num_atoms()
    );
    for atom in graph.atoms() {
        match atom.overlap() {
            Some(o) => {
                let members: Vec<String> = o.members.iter().map(|n| n.to_string()).collect();
                println!(
                    "  {} = overlap({}, {}) over {{{}}}",
                    atom.id,
                    o.pair.0,
                    o.pair.1,
                    members.join(", ")
                );
            }
            None => println!("  {} = ingress-only", atom.id),
        }
    }
    println!("\npaths:");
    for (g, path) in graph.paths() {
        let hops: Vec<String> = path.iter().map(|a| a.to_string()).collect();
        println!("  {g}: {}", hops.join(" -> "));
    }
    println!("\nsequencing nodes (co-location):");
    for (i, node) in coloc.nodes().iter().enumerate() {
        let atoms: Vec<String> = node.atoms.iter().map(|a| a.to_string()).collect();
        let kind = if node.ingress_only { " (ingress-only)" } else { "" };
        println!("  node {i}{kind}: [{}]", atoms.join(", "));
    }
    if let Some(path) = opts.values.get("dot") {
        std::fs::write(path, graph.to_dot()).map_err(|e| e.to_string())?;
        println!("\nGraphviz DOT written to {path}");
    }
    Ok(())
}

fn cmd_cluster(opts: &Options) -> Result<(), String> {
    use seqnet::deploy::{ChaosPlan, DeployCluster};
    use seqnet::membership::workload::ZipfGroups;
    use seqnet::runtime::ClusterConfig;
    use std::time::Duration;

    let hosts = opts.usize_or("hosts", 8)?;
    let groups = opts.usize_or("groups", 3)?;
    let messages = opts.usize_or("messages", 60)?;
    let seed = opts.u64_or("seed", 1)?;
    let chaos = opts.u64_or("chaos", 0)? != 0;
    let trace = opts.u64_or("trace", 0)? != 0;
    let prom = opts.u64_or("prom", 0)? != 0;

    let mut rng = StdRng::seed_from_u64(seed);
    let membership = ZipfGroups::new(hosts, groups).with_min_size(2).sample(&mut rng);
    let config = ClusterConfig {
        seed,
        snapshot_interval: Duration::from_millis(2),
        trace,
        ..ClusterConfig::default()
    };
    let mut cluster = DeployCluster::start(&membership, config)?;
    println!(
        "cluster: {} sequencing-node processes, run dir {}",
        cluster.num_sequencing_nodes(),
        cluster.dir().display()
    );

    let jobs: Vec<(NodeId, GroupId)> = membership
        .nodes()
        .flat_map(|n| membership.groups_of(n).map(move |g| (n, g)).collect::<Vec<_>>())
        .collect();
    if jobs.is_empty() {
        return Err("workload produced no subscriptions; try more hosts".into());
    }
    let mut expected = 0usize;
    for i in 0..messages {
        let (sender, group) = jobs[i % jobs.len()];
        cluster.publish(sender, group, vec![]).map_err(|e| e.to_string())?;
        expected += membership.group_size(group);
    }
    if chaos {
        let plan = ChaosPlan::seeded(seed, cluster.num_sequencing_nodes(), Duration::from_millis(400));
        println!("chaos: replaying seeded plan {plan:?}");
        cluster.run_chaos_plan(&plan)?;
    }
    let deliveries = cluster
        .wait_for_deliveries(expected, Duration::from_secs(30))
        .map_err(|e| e.to_string())?;
    println!("health: {}", cluster.health_line());
    let prom_text = prom.then(|| cluster.prometheus_text());
    let stats = cluster.shutdown();
    let received: usize = deliveries.values().map(Vec::len).sum();
    println!("published {messages} messages -> {received}/{expected} deliveries");
    println!(
        "wire: {} frames sent, {} retransmissions, {} duplicates dropped, {} snapshots",
        stats.frames_sent, stats.retransmissions, stats.duplicates, stats.snapshots
    );
    if stats.recovery.crashes > 0 {
        println!(
            "recovery: {} crash(es), {} frames replayed, {:.1} ms mean recovery",
            stats.recovery.crashes,
            stats.recovery.frames_replayed,
            stats.recovery.recovery_micros as f64 / 1000.0 / stats.recovery.crashes as f64
        );
    }
    if let Some(text) = prom_text {
        print!("{text}");
    }
    if trace {
        println!(
            "trace: per-process JSONL in {} (coord.obs.jsonl + node*.obs.jsonl); \
             reconstruct spans with `seqnet-obs-report spans {}/*.obs.jsonl`",
            cluster.dir().display(),
            cluster.dir().display()
        );
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let membership = Membership::from_groups([
        (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
        (GroupId(1), vec![NodeId(1), NodeId(2), NodeId(3)]),
    ]);
    let mut bus = OrderedPubSub::new(&membership);
    for i in 0..6u8 {
        let (sender, group) = if i % 2 == 0 {
            (NodeId(0), GroupId(0))
        } else {
            (NodeId(3), GroupId(1))
        };
        bus.publish(sender, group, vec![i]).map_err(|e| e.to_string())?;
    }
    bus.run_to_quiescence();
    for node in [NodeId(1), NodeId(2)] {
        let order: Vec<String> = bus.delivered(node).iter().map(|d| d.id.to_string()).collect();
        println!("{node} delivered: {}", order.join(" "));
    }
    println!("overlap members agree on the order of all six messages.");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let o = Options::parse(&args(&["--hosts", "32", "--seed", "9"])).unwrap();
        assert_eq!(o.usize_or("hosts", 1).unwrap(), 32);
        assert_eq!(o.u64_or("seed", 0).unwrap(), 9);
        assert_eq!(o.usize_or("groups", 7).unwrap(), 7, "default applies");
    }

    #[test]
    fn rejects_stray_arguments() {
        assert!(Options::parse(&args(&["hosts"])).is_err());
        assert!(Options::parse(&args(&["--hosts"])).is_err());
        assert!(Options::parse(&args(&["--hosts", "x"]))
            .unwrap()
            .usize_or("hosts", 1)
            .is_err());
    }

    #[test]
    fn topology_names() {
        let o = Options::parse(&args(&["--topology", "medium"])).unwrap();
        assert_eq!(o.topology().unwrap(), TransitStubParams::medium());
        let bad = Options::parse(&args(&["--topology", "huge"])).unwrap();
        assert!(bad.topology().is_err());
    }
}
