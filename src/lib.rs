//! # seqnet — decentralized message ordering for publish/subscribe systems
//!
//! A reproduction of Lumezanu, Spring, Bhattacharjee, *Decentralized Message
//! Ordering for Publish/Subscribe Systems* (Middleware 2006).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`membership`] — node/group ids, the globally-known membership matrix,
//!   and the Zipf/occupancy workload generators of the paper's evaluation.
//! * [`overlap`] — double-overlap computation, sequencing-graph construction
//!   (conditions C1 and C2), atom co-location, and machine placement.
//! * [`core`] — the ordering protocol itself: sequencing atoms, stamps, the
//!   receiver delivery queue, and the high-level [`core::OrderedPubSub`]
//!   service.
//! * [`topology`] — transit-stub topology generation (GT-ITM replacement),
//!   shortest paths, and host attachment.
//! * [`sim`] — the deterministic packet-level discrete-event simulator.
//! * [`baseline`] — centralized sequencer, vector-clock ordering, and direct
//!   unicast baselines.
//! * [`runtime`] — a threaded deployment of the protocol over FIFO channels.
//! * [`deploy`] — a socket-based multi-process deployment with real-process
//!   crash injection (`seqnet cluster`).
//! * [`obs`] — structured protocol tracing, histogram metrics, the flight
//!   recorder, and the JSONL / Prometheus exporters.
//!
//! # Quickstart
//!
//! ```
//! use seqnet::membership::{Membership, NodeId, GroupId};
//! use seqnet::core::OrderedPubSub;
//!
//! // Three nodes, two groups that share two members (a "double overlap").
//! let m = Membership::from_groups([
//!     (GroupId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
//!     (GroupId(1), vec![NodeId(1), NodeId(2)]),
//! ]);
//! let mut bus = OrderedPubSub::new(&m);
//! bus.publish(NodeId(0), GroupId(0), b"hello".to_vec());
//! bus.publish(NodeId(1), GroupId(1), b"world".to_vec());
//! bus.run_to_quiescence();
//! // Both members of the overlap deliver the two messages in the same order.
//! let d1 = bus.delivered(NodeId(1));
//! let d2 = bus.delivered(NodeId(2));
//! assert_eq!(d1.len(), 2);
//! assert_eq!(
//!     d1.iter().map(|d| d.id).collect::<Vec<_>>(),
//!     d2.iter().map(|d| d.id).collect::<Vec<_>>(),
//! );
//! ```

#![forbid(unsafe_code)]

pub use seqnet_baseline as baseline;
pub use seqnet_core as core;
pub use seqnet_deploy as deploy;
pub use seqnet_membership as membership;
pub use seqnet_obs as obs;
pub use seqnet_overlap as overlap;
pub use seqnet_runtime as runtime;
pub use seqnet_sim as sim;
pub use seqnet_topology as topology;

/// The most commonly used items in one import.
///
/// ```
/// use seqnet::prelude::*;
///
/// let m = Membership::from_groups([(GroupId(0), vec![NodeId(0), NodeId(1)])]);
/// let mut bus = OrderedPubSub::new(&m);
/// bus.publish(NodeId(0), GroupId(0), b"hi".to_vec())?;
/// bus.run_to_quiescence();
/// assert_eq!(bus.delivered(NodeId(1)).len(), 1);
/// # Ok::<(), seqnet::core::CoreError>(())
/// ```
pub mod prelude {
    pub use seqnet_core::{
        CoreError, DeliveryRecord, DynamicOrderedPubSub, Message, MessageId, NetworkSetup,
        OrderedPubSub,
    };
    pub use seqnet_membership::{GroupId, Membership, NodeId};
    pub use seqnet_overlap::{GraphBuilder, SequencingGraph};
    pub use seqnet_sim::SimTime;
}
